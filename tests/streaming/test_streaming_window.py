"""Window algebra: exact merge/subtract, slide bit-identity, decay, privacy audit.

The sliding window's whole value proposition is that count algebra replaces
re-scans *without changing a single number*.  The properties here pin that down:

* ``merge`` followed by ``subtract`` restores a ``StreamingAggregator`` bit for bit
  (histogram counts are integer-valued floats, so float addition is exact);
* a :class:`~repro.streaming.WindowedAggregator` that slid past old epochs holds
  byte-identical counts — and therefore produces byte-identical estimates — to one
  that only ever saw the surviving epochs;
* any interleaving of epoch commits with reordered shard merges inside each epoch
  yields bit-identical windowed estimates (addition is commutative on exact
  integers);
* exponential decay matches the explicit weighted sum over the retained epochs;
* the per-report mechanism driving a windowed deployment still audits within
  ``e^eps`` (windowing is post-processing; ``confidence_z=4`` per the established
  multiplicity convention).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import strategies
from repro.core.dam import DiscreteDAM
from repro.core.domain import GridSpec
from repro.core.estimator import ShardAggregate
from repro.metrics.privacy_audit import audit_mechanism
from repro.streaming import WindowedAggregator

SLOW_SETTINGS = settings(
    max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


@pytest.fixture(scope="module")
def mechanism() -> DiscreteDAM:
    return DiscreteDAM(GridSpec.unit(5), 2.0, b_hat=1)


def _random_aggregate(rng: np.random.Generator, mechanism) -> ShardAggregate:
    """A synthetic epoch: integer histograms of a random user population."""
    n_users = int(rng.integers(0, 500))
    noisy = rng.multinomial(
        n_users,
        np.full(mechanism.output_domain_size(), 1.0 / mechanism.output_domain_size()),
    )
    true = rng.multinomial(
        n_users,
        np.full(mechanism.grid.n_cells, 1.0 / mechanism.grid.n_cells),
    )
    return ShardAggregate(
        noisy_counts=noisy.astype(float),
        true_cell_counts=true.astype(float),
        n_users=n_users,
    )


class TestMergeSubtractInverse:
    @given(strategies.rngs())
    @SLOW_SETTINGS
    def test_merge_then_subtract_is_bit_identical(self, mechanism, rng):
        """StreamingAggregator: merge(s); subtract(s) restores the exact state."""
        base = mechanism.streaming_aggregator(seed=0)
        for _ in range(int(rng.integers(0, 4))):
            base.merge(_random_aggregate(rng, mechanism))
        before = base.state()
        transient = _random_aggregate(rng, mechanism)
        base.merge(transient)
        base.subtract(transient)
        after = base.state()
        assert np.array_equal(before.noisy_counts, after.noisy_counts)
        assert np.array_equal(before.true_cell_counts, after.true_cell_counts)
        assert before.n_users == after.n_users

    def test_subtract_rejects_never_merged_counts(self, mechanism):
        aggregator = mechanism.streaming_aggregator(seed=0)
        phantom = ShardAggregate(
            noisy_counts=np.ones(mechanism.output_domain_size()),
            true_cell_counts=np.zeros(mechanism.grid.n_cells),
            n_users=1,
        )
        with pytest.raises(ValueError, match="never merged"):
            aggregator.subtract(phantom)

    def test_subtract_rejects_mismatched_shapes(self, mechanism):
        other = DiscreteDAM(GridSpec.unit(3), 2.0, b_hat=1)
        aggregator = mechanism.streaming_aggregator(seed=0)
        with pytest.raises(ValueError, match="cannot subtract"):
            aggregator.subtract(other.streaming_aggregator(seed=0).state())

    def test_subtract_rejects_wrong_type(self, mechanism):
        with pytest.raises(TypeError, match="subtract expects"):
            mechanism.streaming_aggregator(seed=0).subtract(np.zeros(3))


class TestWindowSlideBitIdentity:
    @given(
        strategies.rngs(),
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=1, max_value=8),
    )
    @SLOW_SETTINGS
    def test_slid_window_equals_fresh_window_over_survivors(
        self, mechanism, rng, window_epochs, n_epochs
    ):
        """Sliding past expired epochs leaves exactly the survivors' counts."""
        epochs = [_random_aggregate(rng, mechanism) for _ in range(n_epochs)]
        slid = WindowedAggregator(mechanism, window_epochs)
        for epoch in epochs:
            slid.commit_aggregate(epoch)
        fresh = WindowedAggregator(mechanism, window_epochs)
        for epoch in epochs[-window_epochs:]:
            fresh.commit_aggregate(epoch)
        noisy_a, true_a, users_a = slid.window_counts()
        noisy_b, true_b, users_b = fresh.window_counts()
        assert np.array_equal(noisy_a, noisy_b)
        assert np.array_equal(true_a, true_b)
        assert users_a == users_b
        # Identical counts imply bit-identical estimates: the estimator is a
        # deterministic function of the histogram.
        if users_a > 0:
            assert np.array_equal(
                slid.finalize().estimate.probabilities,
                fresh.finalize().estimate.probabilities,
            )

    @given(
        strategies.rngs(),
        st.integers(min_value=2, max_value=4),
        st.permutations(list(range(5))),
    )
    @SLOW_SETTINGS
    def test_interleaved_merges_and_reordered_shards_are_bit_identical(
        self, mechanism, rng, window_epochs, shard_order
    ):
        """Shard order inside an epoch and transient merge/subtract interleavings
        cannot change a windowed estimate by even one bit."""
        n_epochs = int(rng.integers(1, window_epochs + 2))
        epoch_shards = [
            [_random_aggregate(rng, mechanism) for _ in range(5)]
            for _ in range(n_epochs)
        ]

        def epoch_aggregate(shards) -> ShardAggregate:
            aggregator = mechanism.streaming_aggregator()
            for shard in shards:
                aggregator.merge(shard)
            return aggregator.state()

        ordered = WindowedAggregator(mechanism, window_epochs)
        for shards in epoch_shards:
            ordered.commit_aggregate(epoch_aggregate(shards))

        shuffled = WindowedAggregator(mechanism, window_epochs)
        for index, shards in enumerate(epoch_shards):
            # Reorder the shard merges and, between epochs, interleave a transient
            # merge+subtract of an unrelated aggregate on the epoch accumulator.
            aggregator = mechanism.streaming_aggregator()
            transient = _random_aggregate(rng, mechanism)
            for position, shard_index in enumerate(shard_order):
                aggregator.merge(shards[shard_index])
                if position == index % 5:
                    aggregator.merge(transient)
                    aggregator.subtract(transient)
            shuffled.commit_aggregate(aggregator.state())

        noisy_a, true_a, users_a = ordered.window_counts()
        noisy_b, true_b, users_b = shuffled.window_counts()
        assert np.array_equal(noisy_a, noisy_b)
        assert np.array_equal(true_a, true_b)
        assert users_a == users_b
        if users_a > 0:
            assert np.array_equal(
                ordered.finalize().estimate.probabilities,
                shuffled.finalize().estimate.probabilities,
            )


class TestDecay:
    @given(strategies.rngs(), st.sampled_from([0.5, 0.8, 0.95]))
    @SLOW_SETTINGS
    def test_decayed_window_matches_explicit_weighted_sum(self, mechanism, rng, decay):
        window = WindowedAggregator(mechanism, 3, decay=decay)
        epochs = [_random_aggregate(rng, mechanism) for _ in range(6)]
        for epoch in epochs:
            window.commit_aggregate(epoch)
        noisy, true, users = window.window_counts()
        survivors = window.epoch_aggregates()
        weights = [decay**age for age in range(len(survivors) - 1, -1, -1)]
        expected_noisy = sum(
            w * e.noisy_counts for w, e in zip(weights, survivors)
        )
        expected_users = sum(w * e.n_users for w, e in zip(weights, survivors))
        np.testing.assert_allclose(noisy, expected_noisy, atol=1e-9)
        assert users == pytest.approx(expected_users, abs=1e-9)
        assert np.all(noisy >= 0) and np.all(true >= 0)

    @given(strategies.rngs())
    @SLOW_SETTINGS
    def test_decay_one_is_bit_identical_to_hard_window(self, mechanism, rng):
        epochs = [_random_aggregate(rng, mechanism) for _ in range(5)]
        hard = WindowedAggregator(mechanism, 2)
        unit_decay = WindowedAggregator(mechanism, 2, decay=1.0)
        for epoch in epochs:
            hard.commit_aggregate(epoch)
            unit_decay.commit_aggregate(epoch)
        noisy_a, _, users_a = hard.window_counts()
        noisy_b, _, users_b = unit_decay.window_counts()
        assert np.array_equal(noisy_a, noisy_b)
        assert users_a == users_b


class TestWindowBehaviour:
    def test_commit_returns_expired_epoch(self, mechanism):
        rng = np.random.default_rng(0)
        window = WindowedAggregator(mechanism, 2)
        first = _random_aggregate(rng, mechanism)
        assert window.commit_aggregate(first) is None
        assert window.commit_aggregate(_random_aggregate(rng, mechanism)) is None
        assert window.commit_aggregate(_random_aggregate(rng, mechanism)) is first
        assert window.n_epochs_in_window == 2
        assert window.epochs_seen == 3

    def test_ingest_epoch_matches_streaming_aggregator(self, mechanism):
        """Point ingestion is the plain StreamingAggregator path, windowed."""
        points = np.random.default_rng(3).random((400, 2))
        window = WindowedAggregator(mechanism, 4)
        window.ingest_epoch(points, seed=11)
        batch = mechanism.streaming_aggregator(seed=11)
        batch.add_points(points)
        noisy, true, users = window.window_counts()
        assert np.array_equal(noisy, batch.noisy_counts)
        assert np.array_equal(true, batch.true_cell_counts)
        assert users == batch.n_users

    def test_ingest_epoch_cells_roundtrip(self, mechanism):
        cells = np.random.default_rng(4).integers(0, mechanism.grid.n_cells, 300)
        window = WindowedAggregator(mechanism, 2)
        aggregate = window.ingest_epoch_cells(cells, seed=7)
        assert aggregate.n_users == 300
        expected = np.bincount(cells, minlength=mechanism.grid.n_cells).astype(float)
        assert np.array_equal(window.window_counts()[1], expected)

    def test_true_distribution_tracks_window_population(self, mechanism):
        window = WindowedAggregator(mechanism, 1)
        cells = np.zeros(50, dtype=np.int64)  # everyone in cell 0
        window.ingest_epoch_cells(cells, seed=0)
        truth = window.true_distribution()
        assert truth.flat()[0] == 1.0
        window.ingest_epoch_cells(np.full(50, 7, dtype=np.int64), seed=1)
        truth = window.true_distribution()
        assert truth.flat()[0] == 0.0 and truth.flat()[7] == 1.0

    def test_validation_errors(self, mechanism):
        with pytest.raises(ValueError, match="window_epochs"):
            WindowedAggregator(mechanism, 0)
        with pytest.raises(ValueError, match="decay"):
            WindowedAggregator(mechanism, 2, decay=0.0)
        with pytest.raises(ValueError, match="decay"):
            WindowedAggregator(mechanism, 2, decay=1.5)
        window = WindowedAggregator(mechanism, 2)
        with pytest.raises(TypeError, match="ShardAggregate"):
            window.commit_aggregate(np.zeros(4))
        other = DiscreteDAM(GridSpec.unit(3), 2.0, b_hat=1)
        with pytest.raises(ValueError, match="different mechanism"):
            window.commit_aggregate(other.streaming_aggregator(seed=0).state())
        with pytest.raises(ValueError, match="no users"):
            window.true_distribution()


class TestWindowedPrivacyAudit:
    @given(strategies.grid_sides(2, 4), st.sampled_from([1.4, 3.5]), strategies.seeds())
    @settings(max_examples=4, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_windowed_deployment_mechanism_within_e_eps(self, d, epsilon, seed):
        """The randomizer a windowed deployment runs per report stays within e^eps.

        Windowing (and the warm-started re-solve) is post-processing of reports the
        mechanism already privatized, so the deployment's per-report guarantee is
        exactly the mechanism's.  The audit runs against the same mechanism
        instance a WindowedAggregator streams through, with the established
        ``confidence_z=4`` max-over-outputs/pairs/examples convention.
        """
        mechanism = DiscreteDAM(GridSpec.unit(d), epsilon, b_hat=1)
        window = WindowedAggregator(mechanism, 2)
        rng = np.random.default_rng(seed)
        for _ in range(3):
            window.ingest_epoch(rng.random((150, 2)), seed=rng)
        assert window.finalize().estimate.probabilities.shape == (d, d)
        n_trials = max(5_000, 300 * mechanism.output_domain_size())
        results = audit_mechanism(
            window.mechanism,
            n_pairs=2,
            n_trials=n_trials,
            confidence_z=4.0,
            seed=seed,
        )
        assert not any(result.violated for result in results), (
            f"windowed DAM exceeded e^eps at epsilon={epsilon}: "
            f"{max(r.epsilon_lower_confidence for r in results):.3f}"
        )
