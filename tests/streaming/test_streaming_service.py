"""Service loop: warm-started re-solves, worker invariance, atomic serving swaps."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.dam import DiscreteDAM
from repro.core.domain import GridDistribution, GridSpec
from repro.core.parallel import ParallelPipeline
from repro.core.postprocess import expectation_maximization
from repro.datasets.synthetic import shifting_hotspot_stream
from repro.mechanisms.mdsw import MDSW
from repro.queries.engine import QueryEngine, QueryLog, StreamingQueryEngine, WorkloadReplay
from repro.streaming import StreamingEstimationService


@pytest.fixture(scope="module")
def stream():
    return shifting_hotspot_stream(n_epochs=6, users_per_epoch=600, seed=0)


class TestServiceLoop:
    def test_epoch_updates_track_the_stream(self, stream):
        service = StreamingEstimationService.build(stream.domain, 8, 3.0, window_epochs=3, seed=1)
        updates = [service.ingest_epoch(points) for points in stream.epochs]
        assert [update.epoch for update in updates] == list(range(6))
        assert all(update.n_users_epoch == 600 for update in updates)
        # The window saturates at 3 epochs' worth of users.
        assert updates[0].n_users_window == 600
        assert updates[-1].n_users_window == 1800
        assert service.epochs_processed == 6
        # Every update carries a solved, published estimate.
        for update in updates:
            assert update.estimate.probabilities.shape == (8, 8)
            assert update.iterations >= 1
            assert np.isfinite(update.log_likelihood)
        assert service.serving.epoch == 5

    def test_windowed_estimate_tracks_drift(self, stream):
        """Late in the stream, a small window beats the all-history estimate."""
        windowed = StreamingEstimationService.build(stream.domain, 8, 3.0, window_epochs=2, seed=1)
        unbounded = StreamingEstimationService.build(
            stream.domain, 8, 3.0, window_epochs=len(stream.epochs), seed=1
        )
        for points in stream.epochs:
            update_windowed = windowed.ingest_epoch(points)
            update_unbounded = unbounded.ingest_epoch(points)
        truth = windowed.window.true_distribution().flat()
        mae_windowed = np.abs(update_windowed.estimate.flat() - truth).mean()
        mae_unbounded = np.abs(update_unbounded.estimate.flat() - truth).mean()
        # The hotspot moved: the estimate over all six epochs is stale by design.
        assert mae_windowed < mae_unbounded

    def test_serial_and_pipeline_ingestion_are_bit_identical(self, stream):
        grid = GridSpec(stream.domain, 6)
        mechanism = DiscreteDAM(grid, 2.5, b_hat=1)
        serial = StreamingEstimationService(mechanism, window_epochs=2, seed=3)
        built = StreamingEstimationService.build(
            stream.domain, 6, 2.5, b_hat=1, window_epochs=2, seed=3
        )
        for points in stream.epochs[:3]:
            update_serial = serial.ingest_epoch(points)
            update_built = built.ingest_epoch(points)
            assert np.array_equal(
                update_serial.estimate.probabilities,
                update_built.estimate.probabilities,
            )
            assert update_serial.iterations == update_built.iterations

    def test_worker_count_does_not_change_estimates(self, stream):
        """The sharded pool path reproduces the serial session bit for bit."""
        results = []
        for workers in (1, 2):
            service = StreamingEstimationService.build(
                stream.domain,
                6,
                2.5,
                window_epochs=2,
                workers=workers,
                shard_size=200,
                seed=5,
            )
            results.append(
                [service.ingest_epoch(points) for points in stream.epochs[:3]]
            )
        for update_serial, update_pooled in zip(*results):
            assert np.array_equal(
                update_serial.estimate.probabilities,
                update_pooled.estimate.probabilities,
            )

    def test_solve_window_matches_direct_em(self, stream):
        service = StreamingEstimationService.build(stream.domain, 6, 2.5, window_epochs=2, seed=7)
        service.ingest_epoch(stream.epochs[0])
        noisy, _, _ = service.window.window_counts()
        direct = expectation_maximization(
            service.mechanism._estimation_transition(),
            noisy,
            max_iterations=service.max_iterations,
            tolerance=service.tolerance,
        )
        cold = service.solve_window()
        assert np.array_equal(cold.estimate, direct.estimate)
        assert cold.iterations == direct.iterations

    def test_warm_start_matches_cold_likelihood(self, stream):
        """Warm solves land on (at least) the cold solve's log-likelihood."""
        service = StreamingEstimationService.build(
            stream.domain,
            8,
            3.0,
            window_epochs=3,
            seed=9,
            tolerance=1e-4,
            max_iterations=2000,
        )
        for points in stream.epochs:
            update = service.ingest_epoch(points)
            cold = service.solve_window()
            per_user_gap = (
                update.log_likelihood - cold.log_likelihood
            ) / max(update.n_users_window, 1.0)
            assert per_user_gap > -1e-3

    def test_warm_initial_floors_the_posterior(self, stream):
        service = StreamingEstimationService.build(
            stream.domain, 8, 3.0, window_epochs=2, seed=11, warm_floor=0.5
        )
        assert service.warm_initial() is None  # nothing solved yet
        service.ingest_epoch(stream.epochs[0])
        initial = service.warm_initial()
        assert initial is not None
        assert initial.min() >= 0.5 / (8 * 8) / (1.0 + 0.5)  # floored, renormalised
        assert initial.sum() == pytest.approx(1.0)

    def test_posterior_is_a_defensive_copy(self, stream):
        service = StreamingEstimationService.build(stream.domain, 6, 2.5, window_epochs=2, seed=15)
        assert service.posterior is None
        update = service.ingest_epoch(stream.epochs[0])
        posterior = service.posterior
        # GridDistribution re-normalises on construction, so the published flat
        # vector may differ from the raw EM posterior in the last ulp.
        np.testing.assert_allclose(posterior, update.estimate.flat(), atol=1e-12)
        posterior[:] = 0.0  # mutating the copy must not poison the warm start
        assert service.warm_initial().sum() == pytest.approx(1.0)
        assert service.warm_initial().max() > 1.0 / 36

    def test_smoothed_solves_stay_normalised(self, stream):
        service = StreamingEstimationService.build(
            stream.domain,
            6,
            2.5,
            window_epochs=2,
            seed=17,
            smoothing_strength=0.4,
        )
        update = service.ingest_epoch(stream.epochs[0])
        assert update.estimate.flat().sum() == pytest.approx(1.0)

    def test_cold_start_service_ignores_posterior(self, stream):
        service = StreamingEstimationService.build(
            stream.domain, 6, 2.5, window_epochs=2, seed=13, warm_start=False
        )
        service.ingest_epoch(stream.epochs[0])
        assert service.warm_initial() is None

    def test_rejects_non_transition_mechanisms(self):
        grid = GridSpec.unit(4)
        with pytest.raises(TypeError, match="transition-matrix"):
            StreamingEstimationService(MDSW(grid, 2.0))

    def test_validation_errors(self, stream):
        grid = GridSpec(stream.domain, 4)
        mechanism = DiscreteDAM(grid, 2.0, b_hat=1)
        with pytest.raises(ValueError, match="max_iterations"):
            StreamingEstimationService(mechanism, max_iterations=0)
        with pytest.raises(ValueError, match="warm_floor"):
            StreamingEstimationService(mechanism, warm_floor=1.0)
        foreign = ParallelPipeline(stream.domain, 4, 2.0, workers=1)
        with pytest.raises(ValueError, match="same mechanism"):
            StreamingEstimationService(mechanism, pipeline=foreign)
        service = StreamingEstimationService(mechanism)
        with pytest.raises(ValueError, match=r"shape \(n, 2\)"):
            service.ingest_epoch(np.zeros((3, 3)))

    def test_ingest_aggregate_skips_privatization(self, stream):
        grid = GridSpec(stream.domain, 4)
        mechanism = DiscreteDAM(grid, 2.0, b_hat=1)
        service = StreamingEstimationService(mechanism, window_epochs=2, seed=0)
        aggregator = mechanism.streaming_aggregator(seed=1)
        aggregator.add_points(stream.epochs[0])
        update = service.ingest_aggregate(aggregator.state())
        assert update.privatize_seconds == 0.0
        assert update.n_users_epoch == 600


class TestParallelAggregate:
    def test_aggregate_matches_run_counts(self, stream):
        pipeline = ParallelPipeline(stream.domain, 6, 2.5, workers=1, shard_size=150)
        aggregate = pipeline.aggregate(stream.epochs[0], seed=21)
        result = pipeline.run(stream.epochs[0], seed=21)
        assert np.array_equal(aggregate.noisy_counts, result.noisy_counts)
        assert aggregate.n_users == result.n_users

    def test_aggregate_validates_shape(self, stream):
        pipeline = ParallelPipeline(stream.domain, 6, 2.5, workers=1)
        with pytest.raises(ValueError, match=r"shape \(n, 2\)"):
            pipeline.aggregate(np.zeros(5))


class TestStreamingQueryEngine:
    @pytest.fixture()
    def estimates(self):
        grid = GridSpec.unit(6)
        rng = np.random.default_rng(0)
        return [
            GridDistribution(grid, rng.dirichlet(np.ones(36))) for _ in range(2)
        ]

    def test_refresh_publishes_fully_built_engine(self, estimates):
        serving = StreamingQueryEngine()
        assert not serving.ready
        with pytest.raises(RuntimeError, match="no estimate"):
            serving.range_mass(np.array([[0.0, 1.0, 0.0, 1.0]]))
        engine = serving.refresh(estimates[0], epoch=0)
        assert serving.ready and serving.epoch == 0
        # The summed-area table exists before the swap ever becomes visible.
        assert engine.sat.table.shape == (7, 7)
        assert serving.snapshot() is engine

    def test_queries_match_plain_engine(self, estimates):
        serving = StreamingQueryEngine(estimates[0])
        plain = QueryEngine(estimates[0])
        queries = np.array([[0.1, 0.4, 0.2, 0.9], [0.0, 1.0, 0.0, 1.0]])
        points = np.array([[0.5, 0.5], [2.0, 2.0]])
        np.testing.assert_array_equal(serving.range_mass(queries), plain.range_mass(queries))
        np.testing.assert_array_equal(serving.point_density(points), plain.point_density(points))
        assert np.array_equal(
            serving.top_k_cells(3).flat_indices, plain.top_k_cells(3).flat_indices
        )
        np.testing.assert_array_equal(serving.axis_marginals()[0], plain.axis_marginals()[0])
        assert (
            serving.quantile_contours([0.5])[0].n_cells
            == plain.quantile_contours([0.5])[0].n_cells
        )
        assert serving.estimate is estimates[0]
        assert serving.grid is estimates[0].grid

    def test_snapshot_pins_the_old_window_across_a_refresh(self, estimates):
        serving = StreamingQueryEngine(estimates[0])
        pinned = serving.snapshot()
        old_answer = pinned.range_mass(np.array([[0.0, 0.5, 0.0, 0.5]]))
        serving.refresh(estimates[1], epoch=1)
        # The pinned engine still serves the old window, byte for byte...
        np.testing.assert_array_equal(
            pinned.range_mass(np.array([[0.0, 0.5, 0.0, 0.5]])), old_answer
        )
        # ...while fresh calls see the new one.
        assert serving.snapshot() is not pinned
        assert serving.epoch == 1

    def test_workload_replay_serves_mid_stream(self, estimates):
        """WorkloadReplay drives the streaming façade unchanged."""
        serving = StreamingQueryEngine(estimates[0])
        log = QueryLog.random(
            estimates[0].grid.domain,
            n_range=50,
            n_density=20,
            n_top_k=2,
            n_quantiles=2,
            n_marginals=1,
            seed=3,
        )
        report, answers = WorkloadReplay(serving).replay(log)
        assert report.n_operations == log.size
        serving.refresh(estimates[1], epoch=1)
        report_after, answers_after = WorkloadReplay(serving).replay(log)
        assert report_after.n_operations == log.size
        # Same workload, new window: the answers moved with the estimate.
        assert not np.array_equal(answers["range_mass"], answers_after["range_mass"])

    def test_trajectory_logs_still_rejected(self, estimates):
        serving = StreamingQueryEngine(estimates[0])
        log = QueryLog(od_top_k=np.array([3]))
        with pytest.raises(TypeError, match="TrajectoryQueryEngine"):
            WorkloadReplay(serving).replay(log)

    def test_published_pair_never_tears_under_refresh_hammer(self):
        """Regression: the (engine, epoch) pair is published in one store.

        refresh() used to write the engine and the epoch as two separate
        attribute stores; a reader thread interleaving between them could pair
        epoch N+1's engine with epoch N's label.  Each estimate here encodes
        its epoch in the argmax cell, so any torn pair is caught immediately.
        """
        import threading

        grid = GridSpec.unit(4)
        n_cells = grid.d * grid.d
        estimates = []
        for epoch in range(n_cells):
            probabilities = np.full(n_cells, 0.5 / (n_cells - 1))
            probabilities[epoch] = 0.5
            estimates.append(GridDistribution(grid, probabilities.reshape(4, 4)))

        serving = StreamingQueryEngine()
        serving.refresh(estimates[0], epoch=0)
        stop = threading.Event()
        torn: list[tuple[int, int]] = []

        def reader() -> None:
            while not stop.is_set():
                engine, epoch = serving.published()
                hotspot = int(np.argmax(engine.estimate.probabilities))
                if hotspot != epoch:
                    torn.append((hotspot, epoch))

        threads = [threading.Thread(target=reader) for _ in range(2)]
        for thread in threads:
            thread.start()
        try:
            for round_index in range(3000):
                epoch = round_index % n_cells
                serving.refresh(estimates[epoch], epoch=epoch)
        finally:
            stop.set()
            for thread in threads:
                thread.join()
        assert torn == []


class TestCumulativeInvalidation:
    def test_invalidate_cumulative_rebuilds_the_table(self):
        grid = GridSpec.unit(4)
        rng = np.random.default_rng(1)
        distribution = GridDistribution(grid, rng.dirichlet(np.ones(16)))
        stale = distribution.cumulative()
        assert distribution.cumulative() is stale  # cached
        # In-place refresh (the exceptional route): cache must be dropped by hand.
        distribution.probabilities[:] = rng.dirichlet(np.ones(16)).reshape(4, 4)
        assert distribution.cumulative() is stale  # still stale without the call
        distribution.invalidate_cumulative()
        rebuilt = distribution.cumulative()
        assert rebuilt is not stale
        assert rebuilt[-1, -1] == pytest.approx(1.0)
        assert not np.array_equal(rebuilt, stale)


class TestSnapshotWriterIntegration:
    """The ingest loop publishes each window to the shared-memory serving tier."""

    def test_mismatched_writer_grid_rejected(self, stream):
        from repro.serving import SnapshotWriter

        with SnapshotWriter(GridSpec.unit(5)) as writer:
            with pytest.raises(ValueError, match="snapshot_writer grid"):
                StreamingEstimationService.build(
                    stream.domain,
                    6,
                    2.5,
                    window_epochs=2,
                    seed=1,
                    snapshot_writer=writer,
                )

    def test_every_epoch_publishes_to_the_segment(self, stream):
        from repro.serving import SnapshotReader, SnapshotWriter

        with SnapshotWriter(GridSpec(stream.domain, 6)) as writer:
            service = StreamingEstimationService.build(
                stream.domain,
                6,
                2.5,
                window_epochs=2,
                seed=11,
                snapshot_writer=writer,
            )
            with SnapshotReader(writer.spec) as reader:
                assert not reader.ready
                for index, points in enumerate(stream.epochs[:3]):
                    update = service.ingest_epoch(points)
                    engine, generation, epoch = reader.pinned()
                    # One publish per epoch: the generation counter advances by
                    # two (odd during the copy, even once consistent).
                    assert generation == 2 * (index + 1)
                    assert epoch == index == update.epoch
                    np.testing.assert_array_equal(
                        engine.estimate.probabilities, update.estimate.probabilities
                    )
                    np.testing.assert_array_equal(
                        engine.sat.table, update.estimate.cumulative()
                    )
