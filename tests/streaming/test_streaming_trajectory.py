"""Trajectory window algebra and the streaming trajectory service.

The trajectory twin of ``test_streaming_window.py``: the generic
:class:`~repro.streaming.SlidingAggregateWindow` slides over
:class:`~repro.trajectory.engine.TrajectoryShardAggregate` epochs with the same
bit-exactness guarantees the point window pins down:

* ``merged`` followed by ``subtracted`` restores a trajectory aggregate bit for
  bit (support counts are integer-valued floats, so float addition is exact);
* a window that slid past expired epochs holds byte-identical counts — and
  therefore feeds byte-identical length/start/direction distributions into the
  synthesized-trajectory Markov model — to one that only ever saw the surviving
  epochs, at any worker count;
* exponential decay matches the explicit weighted sum over retained epochs, and
  ``decay=1.0`` is bit-identical to the hard window;
* the three per-user oracles a streaming trajectory deployment runs still audit
  within their ``e^(eps/3)`` claims (windowing is post-processing;
  ``confidence_z=4`` per the established multiplicity convention).
"""

from __future__ import annotations

from types import SimpleNamespace

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import strategies
from repro.core.domain import GridSpec
from repro.metrics.privacy_audit import audit_mechanism
from repro.streaming import SlidingAggregateWindow, StreamingTrajectoryService
from repro.trajectory.engine import TrajectoryEngine, TrajectoryShardAggregate
from repro.trajectory.ldptrace import DIRECTIONS

SLOW_SETTINGS = settings(
    max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


@pytest.fixture(scope="module")
def engine() -> TrajectoryEngine:
    return TrajectoryEngine.build(GridSpec.unit(4), 3.0, n_length_buckets=5, max_length=16)


def _random_aggregate(rng: np.random.Generator, engine) -> TrajectoryShardAggregate:
    """A synthetic epoch: integer support counts of a random user population."""
    mech = engine.mechanism
    n_users = int(rng.integers(0, 400))
    uniform = lambda k: np.full(k, 1.0 / k)  # noqa: E731
    return TrajectoryShardAggregate(
        length_counts=rng.multinomial(n_users, uniform(mech.n_length_buckets)).astype(float),
        start_counts=rng.multinomial(n_users, uniform(mech.grid.n_cells)).astype(float),
        direction_counts=rng.multinomial(n_users, uniform(len(DIRECTIONS))).astype(float),
        n_users=n_users,
    )


def _random_trajectories(rng: np.random.Generator, n: int) -> list[np.ndarray]:
    return [rng.random((int(rng.integers(1, 10)), 2)) for _ in range(n)]


def _model_arrays(model) -> tuple[np.ndarray, ...]:
    """The Markov model inputs synthesis consumes, as comparable arrays."""
    return (
        np.asarray(model.length_distribution),
        np.asarray(model.start_distribution),
        np.asarray(model.direction_distribution),
    )


class TestTrajectoryMergeSubtractInverse:
    @given(strategies.rngs())
    @SLOW_SETTINGS
    def test_merge_then_subtract_is_bit_identical(self, engine, rng):
        """a.merged(b).subtracted(b) restores a bit for bit (integer algebra)."""
        base = _random_aggregate(rng, engine)
        transient = _random_aggregate(rng, engine)
        restored = base.merged(transient).subtracted(transient)
        assert np.array_equal(base.length_counts, restored.length_counts)
        assert np.array_equal(base.start_counts, restored.start_counts)
        assert np.array_equal(base.direction_counts, restored.direction_counts)
        assert base.n_users == restored.n_users
        assert isinstance(restored.n_users, int)

    def test_subtract_rejects_mismatched_domains(self, engine):
        rng = np.random.default_rng(0)
        other = TrajectoryEngine.build(GridSpec.unit(3), 3.0, n_length_buckets=5, max_length=16)
        with pytest.raises(ValueError, match="cannot subtract"):
            _random_aggregate(rng, engine).subtracted(_random_aggregate(rng, other))

    def test_subtract_rejects_wrong_type(self, engine):
        aggregate = _random_aggregate(np.random.default_rng(1), engine)
        with pytest.raises(TypeError, match="subtract expects"):
            aggregate.subtracted(np.zeros(3))


class TestTrajectoryWindowSlideBitIdentity:
    @given(
        strategies.rngs(),
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=1, max_value=8),
    )
    @SLOW_SETTINGS
    def test_slid_window_equals_fresh_window_over_survivors(
        self, engine, rng, window_epochs, n_epochs
    ):
        """Sliding past expired epochs leaves exactly the survivors' counts —
        and therefore byte-identical Markov model inputs."""
        epochs = [_random_aggregate(rng, engine) for _ in range(n_epochs)]
        slid = SlidingAggregateWindow(window_epochs)
        for epoch in epochs:
            slid.commit(epoch)
        fresh = SlidingAggregateWindow(window_epochs)
        for epoch in epochs[-window_epochs:]:
            fresh.commit(epoch)
        assert np.array_equal(slid.total.length_counts, fresh.total.length_counts)
        assert np.array_equal(slid.total.start_counts, fresh.total.start_counts)
        assert np.array_equal(slid.total.direction_counts, fresh.total.direction_counts)
        assert slid.total.n_users == fresh.total.n_users
        # Identical counts imply bit-identical model estimates: the oracle
        # estimators are deterministic closed forms of the count vectors.
        if slid.total.n_users > 0:
            for slid_arr, fresh_arr in zip(
                _model_arrays(engine.estimate(slid.total)),
                _model_arrays(engine.estimate(fresh.total)),
            ):
                assert np.array_equal(slid_arr, fresh_arr)

    @given(strategies.seeds(), st.integers(min_value=2, max_value=3))
    @settings(max_examples=5, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_sharded_epochs_are_worker_invariant(self, engine, seed, workers):
        """collect_aggregate_sharded is bit-identical at any worker count, so a
        slid window of sharded epochs is too."""
        rng = np.random.default_rng(seed)
        epochs = [_random_trajectories(rng, 30) for _ in range(3)]
        totals = []
        for n_workers in (1, workers):
            window = SlidingAggregateWindow(2)
            for index, trajectories in enumerate(epochs):
                window.commit(
                    engine.collect_aggregate_sharded(
                        trajectories, seed=seed + index, workers=n_workers, shard_size=8
                    )
                )
            totals.append(window.total)
        serial, pooled = totals
        assert np.array_equal(serial.length_counts, pooled.length_counts)
        assert np.array_equal(serial.start_counts, pooled.start_counts)
        assert np.array_equal(serial.direction_counts, pooled.direction_counts)
        assert serial.n_users == pooled.n_users
        for serial_arr, pooled_arr in zip(
            _model_arrays(engine.estimate(serial)), _model_arrays(engine.estimate(pooled))
        ):
            assert np.array_equal(serial_arr, pooled_arr)


class TestTrajectoryDecay:
    @given(strategies.rngs(), st.sampled_from([0.5, 0.8, 0.95]))
    @SLOW_SETTINGS
    def test_decayed_window_matches_explicit_weighted_sum(self, engine, rng, decay):
        window = SlidingAggregateWindow(3, decay=decay)
        for _ in range(6):
            window.commit(_random_aggregate(rng, engine))
        survivors = window.epoch_aggregates()
        weights = [decay**age for age in range(len(survivors) - 1, -1, -1)]
        expected_lengths = sum(w * e.length_counts for w, e in zip(weights, survivors))
        expected_users = sum(w * e.n_users for w, e in zip(weights, survivors))
        np.testing.assert_allclose(window.total.length_counts, expected_lengths, atol=1e-9)
        assert float(window.total.n_users) == pytest.approx(expected_users, abs=1e-9)
        assert np.all(window.total.start_counts >= 0)

    @given(strategies.rngs())
    @SLOW_SETTINGS
    def test_decay_one_is_bit_identical_to_hard_window(self, engine, rng):
        epochs = [_random_aggregate(rng, engine) for _ in range(5)]
        hard = SlidingAggregateWindow(2)
        unit_decay = SlidingAggregateWindow(2, decay=1.0)
        for epoch in epochs:
            hard.commit(epoch)
            unit_decay.commit(epoch)
        assert np.array_equal(hard.total.length_counts, unit_decay.total.length_counts)
        assert np.array_equal(hard.total.start_counts, unit_decay.total.start_counts)
        assert float(hard.total.n_users) == float(unit_decay.total.n_users)


class TestStreamingTrajectoryServiceBehaviour:
    def test_session_slides_refreshes_and_publishes(self, engine):
        rng = np.random.default_rng(5)
        service = StreamingTrajectoryService(
            engine, window_epochs=2, n_synthetic=60, seed=9
        )
        epochs = [_random_trajectories(rng, 25) for _ in range(4)]
        for index, trajectories in enumerate(epochs):
            update = service.ingest_epoch(trajectories)
            assert update.epoch == index
            assert update.n_users_epoch == 25
            assert update.n_synthetic == 60
            assert service.serving.epoch == index
        assert service.epochs_processed == 4
        assert service.window.n_epochs_in_window == 2
        assert update.n_users_window == 50.0
        # The published engine answers the trajectory workload atomically.
        od = service.serving.od_top_k(3)
        assert od.counts.shape[0] <= 3
        counts, edges = service.serving.length_histogram(bins=4)
        assert counts.sum() == 60 and edges.shape == (5,)

    def test_refreshed_model_equals_estimate_over_window_total(self, engine):
        """The warm refresh is exactly one closed-form estimate of the slid counts."""
        rng = np.random.default_rng(6)
        service = StreamingTrajectoryService(engine, window_epochs=2, n_synthetic=0, seed=1)
        aggregates = [_random_aggregate(rng, engine) for _ in range(3)]
        for aggregate in aggregates:
            update = service.ingest_aggregate(aggregate)
        expected = engine.estimate(aggregates[1].merged(aggregates[2]))
        for got, want in zip(_model_arrays(update.model), _model_arrays(expected)):
            assert np.array_equal(got, want)
        assert update.collect_seconds == 0.0

    def test_unpublished_service_keeps_serving_empty(self, engine):
        service = StreamingTrajectoryService(engine, window_epochs=2, n_synthetic=0, seed=0)
        service.ingest_aggregate(_random_aggregate(np.random.default_rng(2), engine))
        assert service.model is not None
        with pytest.raises(RuntimeError, match="no estimate has been published"):
            service.serving.snapshot()

    def test_validation_errors(self, engine):
        with pytest.raises(TypeError, match="wraps a TrajectoryEngine"):
            StreamingTrajectoryService(object())
        with pytest.raises(ValueError, match="n_synthetic"):
            StreamingTrajectoryService(engine, n_synthetic=-1)
        with pytest.raises(ValueError, match="workers"):
            StreamingTrajectoryService(engine, workers=0)
        service = StreamingTrajectoryService(engine, window_epochs=2)
        with pytest.raises(TypeError, match="TrajectoryShardAggregate"):
            service.ingest_aggregate(np.zeros(4))


class _GRROracleAuditAdapter:
    """Expose a categorical GRR oracle through the SpatialMechanism audit surface."""

    def __init__(self, oracle) -> None:
        self.oracle = oracle
        self.epsilon = oracle.epsilon
        self.grid = SimpleNamespace(n_cells=oracle.domain_size)

    def output_domain_size(self) -> int:
        return self.oracle.domain_size

    def privatize_cells(self, cells: np.ndarray, seed=None) -> np.ndarray:
        return self.oracle.privatize(cells, seed=seed)


class TestStreamingTrajectoryPrivacyAudit:
    @given(strategies.grid_sides(2, 4), st.sampled_from([1.4, 3.5]), strategies.seeds())
    @settings(max_examples=4, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_streaming_deployment_oracles_within_budget_share(self, d, epsilon, seed):
        """The per-report randomizers a trajectory session runs stay within e^(eps/3).

        Windowing, model refreshes and synthesis are post-processing of reports
        the three oracles already privatized, so the deployment's per-report
        guarantee is exactly the batch pipeline's.  The audit runs against the
        same oracle instances a StreamingTrajectoryService streams through, with
        the established ``confidence_z=4`` multiplicity convention.
        """
        service = StreamingTrajectoryService.build(
            GridSpec.unit(d).domain, d, epsilon,
            n_length_buckets=4, max_length=12, window_epochs=2, n_synthetic=20, seed=seed,
        )
        rng = np.random.default_rng(seed)
        for _ in range(3):
            service.ingest_epoch(_random_trajectories(rng, 40))
        assert service.serving.estimate.probabilities.shape == (d, d)
        for oracle in (
            service.engine.mechanism.length_oracle,
            service.engine.mechanism.direction_oracle,
        ):
            adapter = _GRROracleAuditAdapter(oracle)
            n_trials = max(5_000, 300 * oracle.domain_size)
            results = audit_mechanism(
                adapter, n_pairs=2, n_trials=n_trials, confidence_z=4.0, seed=seed
            )
            assert not any(result.violated for result in results), (
                f"{type(oracle).__name__} exceeded its eps/3 = {oracle.epsilon:.3f} "
                f"claim in the streaming deployment: "
                f"{max(r.epsilon_lower_confidence for r in results):.3f}"
            )
