"""Tests for repro.datasets.loader — the dataset registry."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.loader import DATASET_NAMES, load_all_datasets, load_dataset


class TestLoadDataset:
    @pytest.mark.parametrize("name", DATASET_NAMES)
    def test_all_names_load(self, name):
        dataset = load_dataset(name, scale=0.005, seed=0)
        assert dataset.total_points > 0
        for _, points, domain in dataset.parts:
            assert domain.contains(points).all()

    def test_case_insensitive(self):
        assert load_dataset("crime", scale=0.005).name == "Crime"

    def test_real_datasets_have_three_parts(self):
        assert len(load_dataset("Crime", scale=0.005).parts) == 3
        assert len(load_dataset("NYC", scale=0.005).parts) == 3

    def test_synthetic_datasets_have_one_part(self):
        assert len(load_dataset("Normal", scale=0.005).parts) == 1
        assert len(load_dataset("SZipf", scale=0.005).parts) == 1
        assert len(load_dataset("MNormal", scale=0.005).parts) == 1

    def test_full_domain_mode(self):
        dataset = load_dataset("Crime", scale=0.005, full_domain=True)
        assert len(dataset.parts) == 1
        assert dataset.name == "Crime-full"

    def test_scale_changes_size(self):
        small = load_dataset("Normal", scale=0.005).total_points
        big = load_dataset("Normal", scale=0.01).total_points
        assert big > small

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            load_dataset("Berlin")

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError):
            load_dataset("Crime", scale=2.0)

    def test_deterministic(self):
        a = load_dataset("SZipf", scale=0.005, seed=3)
        b = load_dataset("SZipf", scale=0.005, seed=3)
        np.testing.assert_array_equal(a.parts[0][1], b.parts[0][1])

    def test_part_names(self):
        names = load_dataset("NYC", scale=0.005).part_names()
        assert names == ["nyc-part-a", "nyc-part-b", "nyc-part-c"]


class TestLoadAll:
    def test_loads_all_five(self):
        datasets = load_all_datasets(scale=0.005)
        assert set(datasets) == set(DATASET_NAMES)
