"""Tests for repro.datasets.synthetic — the paper's datasets and the drift streams."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.synthetic import (
    DRIFT_SCENARIOS,
    appearing_cluster_stream,
    diurnal_mixture_stream,
    mnormal_dataset,
    normal_dataset,
    shifting_hotspot_stream,
    szipf_dataset,
    uniform_dataset,
)


class TestNormalDataset:
    def test_size_and_shape(self):
        data = normal_dataset(n=5000, seed=0)
        assert data.points.shape == (5000, 2)
        assert data.size == 5000

    def test_all_points_within_clip(self):
        data = normal_dataset(n=3000, clip=5.0, seed=1)
        assert np.abs(data.points).max() < 5.0

    def test_correlation_sign(self):
        data = normal_dataset(n=50_000, rho=0.5, seed=2)
        measured = np.corrcoef(data.points[:, 0], data.points[:, 1])[0, 1]
        assert measured == pytest.approx(0.5, abs=0.03)

    def test_negative_correlation(self):
        data = normal_dataset(n=50_000, rho=-0.4, seed=3)
        assert np.corrcoef(data.points[:, 0], data.points[:, 1])[0, 1] < -0.3

    def test_deterministic_given_seed(self):
        a = normal_dataset(n=1000, seed=7).points
        b = normal_dataset(n=1000, seed=7).points
        np.testing.assert_array_equal(a, b)

    def test_invalid_rho_rejected(self):
        with pytest.raises(ValueError):
            normal_dataset(n=10, rho=1.0)

    def test_zero_points(self):
        assert normal_dataset(n=0, seed=0).points.shape == (0, 2)

    def test_domain_covers_points(self):
        data = normal_dataset(n=2000, seed=4)
        assert data.domain.contains(data.points).all()


class TestSZipfDataset:
    def test_points_in_unit_square(self):
        data = szipf_dataset(n=5000, seed=0)
        assert data.points.min() >= 0.0
        assert data.points.max() < 1.0

    def test_skew_towards_origin(self):
        """The skew-Zipf density is decreasing, so the lower half holds most of the mass."""
        data = szipf_dataset(n=50_000, seed=1)
        fraction_low = (data.points[:, 0] < 0.5).mean()
        # P(X < 0.5) = log2(1.5) ~ 0.585
        assert fraction_low == pytest.approx(np.log2(1.5), abs=0.01)

    def test_coordinates_independent(self):
        data = szipf_dataset(n=50_000, seed=2)
        corr = np.corrcoef(data.points[:, 0], data.points[:, 1])[0, 1]
        assert abs(corr) < 0.02

    def test_deterministic(self):
        np.testing.assert_array_equal(
            szipf_dataset(n=500, seed=9).points, szipf_dataset(n=500, seed=9).points
        )

    def test_negative_n_rejected(self):
        with pytest.raises(ValueError):
            szipf_dataset(n=-1)


class TestMNormalDataset:
    def test_size(self):
        assert mnormal_dataset(n=9000, seed=0).size == 9000

    def test_three_visible_clusters(self):
        data = mnormal_dataset(n=30_000, seed=1)
        # Cluster centres are separated, so the marginal std must exceed a single
        # cluster's std of 1.
        assert data.points[:, 0].std() > 1.5

    def test_uneven_split_handled(self):
        assert mnormal_dataset(n=10_001, seed=2).size == 10_001

    def test_centers_and_rhos_must_match(self):
        with pytest.raises(ValueError):
            mnormal_dataset(n=10, centers=((0, 0),), rhos=(0.1, 0.2))

    def test_points_within_domain(self):
        data = mnormal_dataset(n=5000, seed=3)
        assert data.domain.contains(data.points).all()


class TestUniformDataset:
    def test_covers_domain_evenly(self):
        data = uniform_dataset(n=40_000, seed=0)
        assert abs(data.points[:, 0].mean() - 0.5) < 0.01
        assert abs(data.points[:, 1].mean() - 0.5) < 0.01

    def test_custom_domain(self):
        from repro.core.domain import SpatialDomain

        domain = SpatialDomain(-1, 1, 10, 12)
        data = uniform_dataset(n=100, domain=domain, seed=1)
        assert domain.contains(data.points).all()

    def test_negative_n_rejected(self):
        with pytest.raises(ValueError):
            uniform_dataset(n=-5)


class TestDriftingStreams:
    @pytest.mark.parametrize("generator", sorted(DRIFT_SCENARIOS))
    def test_epoch_shapes_and_domain(self, generator):
        stream = DRIFT_SCENARIOS[generator](n_epochs=5, users_per_epoch=300, seed=0)
        assert stream.n_epochs == 5
        for epoch in stream.epochs:
            assert epoch.shape == (300, 2)
            assert stream.domain.contains(epoch).all()

    @pytest.mark.parametrize("generator", sorted(DRIFT_SCENARIOS))
    def test_deterministic_given_seed(self, generator):
        first = DRIFT_SCENARIOS[generator](n_epochs=4, users_per_epoch=200, seed=9)
        second = DRIFT_SCENARIOS[generator](n_epochs=4, users_per_epoch=200, seed=9)
        for a, b in zip(first.epochs, second.epochs):
            assert np.array_equal(a, b)
        third = DRIFT_SCENARIOS[generator](n_epochs=4, users_per_epoch=200, seed=10)
        assert not np.array_equal(first.epochs[0], third.epochs[0])

    def test_hotspot_actually_shifts(self):
        stream = shifting_hotspot_stream(
            n_epochs=10,
            users_per_epoch=4000,
            start=(0.2, 0.2),
            end=(0.8, 0.8),
            background=0.0,
            seed=1,
        )
        first_mean = stream.epochs[0].mean(axis=0)
        last_mean = stream.epochs[-1].mean(axis=0)
        np.testing.assert_allclose(first_mean, [0.2, 0.2], atol=0.02)
        np.testing.assert_allclose(last_mean, [0.8, 0.8], atol=0.02)

    def test_cluster_appears_and_vanishes(self):
        stream = appearing_cluster_stream(
            n_epochs=12,
            users_per_epoch=4000,
            base_center=(0.25, 0.5),
            cluster_center=(0.85, 0.5),
            appear_at=0.25,
            vanish_at=0.75,
            background=0.0,
            seed=2,
        )
        def cluster_fraction(points):
            return (points[:, 0] > 0.6).mean()
        # No cluster at the edges of the stream, a visible one at the peak.
        assert cluster_fraction(stream.epochs[0]) < 0.02
        assert cluster_fraction(stream.epochs[-1]) < 0.02
        assert cluster_fraction(stream.epochs[6]) > 0.3

    def test_diurnal_oscillation(self):
        stream = diurnal_mixture_stream(
            n_epochs=12,
            users_per_epoch=4000,
            period=12,
            background=0.0,
            seed=3,
        )
        def day_fraction(points):
            return (points[:, 0] > 0.5).mean()
        # sin peaks at epoch 3 (day district) and troughs at epoch 9.
        assert day_fraction(stream.epochs[3]) > 0.8
        assert day_fraction(stream.epochs[9]) < 0.2

    def test_window_points_concatenates_the_hard_window(self):
        stream = shifting_hotspot_stream(n_epochs=6, users_per_epoch=50, seed=4)
        window = stream.window_points(4, 3)
        assert window.shape == (150, 2)
        assert np.array_equal(window, np.vstack(stream.epochs[2:5]))
        early = stream.window_points(0, 3)  # clipped at the stream start
        assert early.shape == (50, 2)
        with pytest.raises(ValueError):
            stream.window_points(6, 3)

    def test_parameters_allow_reconstruction(self):
        stream = shifting_hotspot_stream(n_epochs=3, users_per_epoch=100, seed=5)
        twin = shifting_hotspot_stream(seed=5, **stream.parameters)
        for a, b in zip(stream.epochs, twin.epochs):
            assert np.array_equal(a, b)

    def test_validation_errors(self):
        with pytest.raises(ValueError, match="n_epochs"):
            shifting_hotspot_stream(n_epochs=0)
        with pytest.raises(ValueError, match="users_per_epoch"):
            shifting_hotspot_stream(users_per_epoch=-1)
        with pytest.raises(ValueError, match="background"):
            shifting_hotspot_stream(background=1.5)
        with pytest.raises(ValueError, match="appear_at"):
            appearing_cluster_stream(appear_at=0.8, vanish_at=0.2)
        with pytest.raises(ValueError, match="period"):
            diurnal_mixture_stream(period=1)
