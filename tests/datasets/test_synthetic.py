"""Tests for repro.datasets.synthetic — Normal, SZipf, MNormal and the uniform control."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.synthetic import (
    mnormal_dataset,
    normal_dataset,
    szipf_dataset,
    uniform_dataset,
)


class TestNormalDataset:
    def test_size_and_shape(self):
        data = normal_dataset(n=5000, seed=0)
        assert data.points.shape == (5000, 2)
        assert data.size == 5000

    def test_all_points_within_clip(self):
        data = normal_dataset(n=3000, clip=5.0, seed=1)
        assert np.abs(data.points).max() < 5.0

    def test_correlation_sign(self):
        data = normal_dataset(n=50_000, rho=0.5, seed=2)
        measured = np.corrcoef(data.points[:, 0], data.points[:, 1])[0, 1]
        assert measured == pytest.approx(0.5, abs=0.03)

    def test_negative_correlation(self):
        data = normal_dataset(n=50_000, rho=-0.4, seed=3)
        assert np.corrcoef(data.points[:, 0], data.points[:, 1])[0, 1] < -0.3

    def test_deterministic_given_seed(self):
        a = normal_dataset(n=1000, seed=7).points
        b = normal_dataset(n=1000, seed=7).points
        np.testing.assert_array_equal(a, b)

    def test_invalid_rho_rejected(self):
        with pytest.raises(ValueError):
            normal_dataset(n=10, rho=1.0)

    def test_zero_points(self):
        assert normal_dataset(n=0, seed=0).points.shape == (0, 2)

    def test_domain_covers_points(self):
        data = normal_dataset(n=2000, seed=4)
        assert data.domain.contains(data.points).all()


class TestSZipfDataset:
    def test_points_in_unit_square(self):
        data = szipf_dataset(n=5000, seed=0)
        assert data.points.min() >= 0.0
        assert data.points.max() < 1.0

    def test_skew_towards_origin(self):
        """The skew-Zipf density is decreasing, so the lower half holds most of the mass."""
        data = szipf_dataset(n=50_000, seed=1)
        fraction_low = (data.points[:, 0] < 0.5).mean()
        # P(X < 0.5) = log2(1.5) ~ 0.585
        assert fraction_low == pytest.approx(np.log2(1.5), abs=0.01)

    def test_coordinates_independent(self):
        data = szipf_dataset(n=50_000, seed=2)
        corr = np.corrcoef(data.points[:, 0], data.points[:, 1])[0, 1]
        assert abs(corr) < 0.02

    def test_deterministic(self):
        np.testing.assert_array_equal(
            szipf_dataset(n=500, seed=9).points, szipf_dataset(n=500, seed=9).points
        )

    def test_negative_n_rejected(self):
        with pytest.raises(ValueError):
            szipf_dataset(n=-1)


class TestMNormalDataset:
    def test_size(self):
        assert mnormal_dataset(n=9000, seed=0).size == 9000

    def test_three_visible_clusters(self):
        data = mnormal_dataset(n=30_000, seed=1)
        # Cluster centres are separated, so the marginal std must exceed a single
        # cluster's std of 1.
        assert data.points[:, 0].std() > 1.5

    def test_uneven_split_handled(self):
        assert mnormal_dataset(n=10_001, seed=2).size == 10_001

    def test_centers_and_rhos_must_match(self):
        with pytest.raises(ValueError):
            mnormal_dataset(n=10, centers=((0, 0),), rhos=(0.1, 0.2))

    def test_points_within_domain(self):
        data = mnormal_dataset(n=5000, seed=3)
        assert data.domain.contains(data.points).all()


class TestUniformDataset:
    def test_covers_domain_evenly(self):
        data = uniform_dataset(n=40_000, seed=0)
        assert abs(data.points[:, 0].mean() - 0.5) < 0.01
        assert abs(data.points[:, 1].mean() - 0.5) < 0.01

    def test_custom_domain(self):
        from repro.core.domain import SpatialDomain

        domain = SpatialDomain(-1, 1, 10, 12)
        data = uniform_dataset(n=100, domain=domain, seed=1)
        assert domain.contains(data.points).all()

    def test_negative_n_rejected(self):
        with pytest.raises(ValueError):
            uniform_dataset(n=-5)
