"""Tests for repro.datasets.trajectories — the Appendix-D trajectory generator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.domain import SpatialDomain
from repro.datasets.trajectories import generate_trajectories


@pytest.fixture(scope="module")
def source_points() -> np.ndarray:
    rng = np.random.default_rng(0)
    hub_a = rng.normal([0.3, 0.3], 0.05, size=(3000, 2))
    hub_b = rng.normal([0.7, 0.6], 0.08, size=(2000, 2))
    return np.clip(np.vstack([hub_a, hub_b]), 0, 1)


@pytest.fixture(scope="module")
def domain() -> SpatialDomain:
    return SpatialDomain.unit("traj")


@pytest.fixture(scope="module")
def dataset(source_points, domain):
    return generate_trajectories(
        source_points,
        domain,
        routing_d=40,
        n_trajectories=60,
        min_length=2,
        max_length=30,
        seed=1,
    )


class TestGeneration:
    def test_count(self, dataset):
        assert dataset.size == 60

    def test_lengths_within_bounds(self, dataset):
        lengths = dataset.lengths()
        assert lengths.min() >= 2
        assert lengths.max() <= 30

    def test_points_inside_domain(self, dataset, domain):
        assert domain.contains(dataset.all_points()).all()

    def test_consecutive_steps_are_neighbours(self, dataset):
        """Each move goes to one of the 8 neighbouring routing cells."""
        grid = dataset.routing_grid
        for trajectory in dataset.trajectories[:10]:
            cells = grid.point_to_cell(trajectory)
            rows, cols = grid.cell_to_rowcol(cells)
            assert np.all(np.abs(np.diff(rows)) <= 1)
            assert np.all(np.abs(np.diff(cols)) <= 1)

    def test_trajectories_follow_density(self, dataset, source_points, domain):
        """Trajectory points concentrate where the source points are dense."""
        from repro.core.domain import GridSpec

        grid = GridSpec(domain, 5)
        source = grid.distribution(source_points)
        generated = grid.distribution(dataset.all_points())
        # The densest source cell must also carry high generated mass.
        top_cell = int(np.argmax(source.flat()))
        assert generated.flat()[top_cell] > 1.0 / 25

    def test_deterministic_given_seed(self, source_points, domain):
        a = generate_trajectories(
            source_points, domain, routing_d=20, n_trajectories=10, max_length=10, seed=5
        )
        b = generate_trajectories(
            source_points, domain, routing_d=20, n_trajectories=10, max_length=10, seed=5
        )
        for t_a, t_b in zip(a.trajectories, b.trajectories):
            np.testing.assert_array_equal(t_a, t_b)

    def test_empty_domain_rejected(self, domain):
        with pytest.raises(ValueError):
            generate_trajectories(np.array([[5.0, 5.0]]), domain, routing_d=10)

    def test_invalid_length_range_rejected(self, source_points, domain):
        with pytest.raises(ValueError):
            generate_trajectories(source_points, domain, routing_d=10, min_length=5, max_length=2)

    def test_zero_trajectories(self, source_points, domain):
        data = generate_trajectories(source_points, domain, routing_d=10, n_trajectories=0, seed=0)
        assert data.size == 0
        assert data.all_points().shape == (0, 2)
