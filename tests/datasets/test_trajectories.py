"""Tests for repro.datasets.trajectories — the Appendix-D trajectory generator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.domain import SpatialDomain
from repro.datasets.trajectories import (
    TRAJECTORY_DRIFT_SCENARIOS,
    commute_shift_stream,
    event_surge_stream,
    generate_trajectories,
    route_closure_stream,
)


@pytest.fixture(scope="module")
def source_points() -> np.ndarray:
    rng = np.random.default_rng(0)
    hub_a = rng.normal([0.3, 0.3], 0.05, size=(3000, 2))
    hub_b = rng.normal([0.7, 0.6], 0.08, size=(2000, 2))
    return np.clip(np.vstack([hub_a, hub_b]), 0, 1)


@pytest.fixture(scope="module")
def domain() -> SpatialDomain:
    return SpatialDomain.unit("traj")


@pytest.fixture(scope="module")
def dataset(source_points, domain):
    return generate_trajectories(
        source_points,
        domain,
        routing_d=40,
        n_trajectories=60,
        min_length=2,
        max_length=30,
        seed=1,
    )


class TestGeneration:
    def test_count(self, dataset):
        assert dataset.size == 60

    def test_lengths_within_bounds(self, dataset):
        lengths = dataset.lengths()
        assert lengths.min() >= 2
        assert lengths.max() <= 30

    def test_points_inside_domain(self, dataset, domain):
        assert domain.contains(dataset.all_points()).all()

    def test_consecutive_steps_are_neighbours(self, dataset):
        """Each move goes to one of the 8 neighbouring routing cells."""
        grid = dataset.routing_grid
        for trajectory in dataset.trajectories[:10]:
            cells = grid.point_to_cell(trajectory)
            rows, cols = grid.cell_to_rowcol(cells)
            assert np.all(np.abs(np.diff(rows)) <= 1)
            assert np.all(np.abs(np.diff(cols)) <= 1)

    def test_trajectories_follow_density(self, dataset, source_points, domain):
        """Trajectory points concentrate where the source points are dense."""
        from repro.core.domain import GridSpec

        grid = GridSpec(domain, 5)
        source = grid.distribution(source_points)
        generated = grid.distribution(dataset.all_points())
        # The densest source cell must also carry high generated mass.
        top_cell = int(np.argmax(source.flat()))
        assert generated.flat()[top_cell] > 1.0 / 25

    def test_deterministic_given_seed(self, source_points, domain):
        a = generate_trajectories(
            source_points, domain, routing_d=20, n_trajectories=10, max_length=10, seed=5
        )
        b = generate_trajectories(
            source_points, domain, routing_d=20, n_trajectories=10, max_length=10, seed=5
        )
        for t_a, t_b in zip(a.trajectories, b.trajectories):
            np.testing.assert_array_equal(t_a, t_b)

    def test_empty_domain_rejected(self, domain):
        with pytest.raises(ValueError):
            generate_trajectories(np.array([[5.0, 5.0]]), domain, routing_d=10)

    def test_invalid_length_range_rejected(self, source_points, domain):
        with pytest.raises(ValueError):
            generate_trajectories(source_points, domain, routing_d=10, min_length=5, max_length=2)

    def test_zero_trajectories(self, source_points, domain):
        data = generate_trajectories(source_points, domain, routing_d=10, n_trajectories=0, seed=0)
        assert data.size == 0
        assert data.all_points().shape == (0, 2)


class TestDriftingTrajectoryStreams:
    @pytest.mark.parametrize("generator", sorted(TRAJECTORY_DRIFT_SCENARIOS))
    def test_epoch_shapes_and_domain(self, generator):
        stream = TRAJECTORY_DRIFT_SCENARIOS[generator](
            n_epochs=4, trajectories_per_epoch=30, max_length=12, seed=0
        )
        assert stream.n_epochs == 4
        for epoch in stream.epochs:
            assert len(epoch) == 30
            for trajectory in epoch:
                assert trajectory.ndim == 2 and trajectory.shape[1] == 2
                assert 2 <= trajectory.shape[0] <= 12
                assert stream.domain.contains(trajectory).all()

    @pytest.mark.parametrize("generator", sorted(TRAJECTORY_DRIFT_SCENARIOS))
    def test_deterministic_given_seed(self, generator):
        first = TRAJECTORY_DRIFT_SCENARIOS[generator](
            n_epochs=3, trajectories_per_epoch=20, seed=9
        )
        second = TRAJECTORY_DRIFT_SCENARIOS[generator](
            n_epochs=3, trajectories_per_epoch=20, seed=9
        )
        for epoch_a, epoch_b in zip(first.epochs, second.epochs):
            for t_a, t_b in zip(epoch_a, epoch_b):
                np.testing.assert_array_equal(t_a, t_b)
        third = TRAJECTORY_DRIFT_SCENARIOS[generator](
            n_epochs=3, trajectories_per_epoch=20, seed=10
        )
        assert not np.array_equal(first.epochs[0][0], third.epochs[0][0])

    def test_window_trajectories_flattens_survivors(self):
        stream = commute_shift_stream(n_epochs=5, trajectories_per_epoch=10, seed=0)
        window = stream.window_trajectories(4, 2)
        assert len(window) == 20
        np.testing.assert_array_equal(window[0], stream.epochs[3][0])
        with pytest.raises(ValueError, match="end must lie"):
            stream.window_trajectories(5, 2)

    def test_commute_direction_reverses(self):
        stream = commute_shift_stream(
            n_epochs=10, trajectories_per_epoch=200, max_length=20, seed=1
        )
        def northeast_fraction(epoch):
            # Trajectory heads northeast when its end is above+right of its start.
            heads = [t[-1] - t[0] for t in epoch]
            return np.mean([float(h[0] + h[1] > 0) for h in heads])
        assert northeast_fraction(stream.epochs[0]) > 0.7  # mostly home -> work
        assert northeast_fraction(stream.epochs[-1]) < 0.3  # mostly work -> home

    def test_event_surge_converges_on_venue(self):
        venue = (0.5, 0.75)
        stream = event_surge_stream(
            n_epochs=11, trajectories_per_epoch=200, venue=venue,
            surge_at=0.2, disperse_at=0.8, max_length=25, seed=2,
        )
        def mean_final_distance(epoch):
            return np.mean([np.linalg.norm(t[-1] - np.asarray(venue)) for t in epoch])
        # At the surge peak, endpoints sit far closer to the venue than at the edges.
        assert mean_final_distance(stream.epochs[5]) < mean_final_distance(stream.epochs[0]) - 0.05
        assert mean_final_distance(stream.epochs[5]) < mean_final_distance(stream.epochs[-1]) - 0.05

    def test_route_closure_blocks_the_band(self):
        band = (0.45, 0.55)
        stream = route_closure_stream(
            n_epochs=10, trajectories_per_epoch=150, band=band,
            close_at=0.3, reopen_at=0.7, max_length=25, seed=3,
        )
        def band_occupancy(epoch):
            points = np.vstack(epoch)
            return ((points[:, 0] > band[0]) & (points[:, 0] < band[1])).mean()
        # Open epochs cross the band freely; closed epochs barely touch it
        # (starts may land inside, but no step may enter).
        assert band_occupancy(stream.epochs[0]) > 0.05
        assert band_occupancy(stream.epochs[5]) < band_occupancy(stream.epochs[0]) / 2
        assert band_occupancy(stream.epochs[-1]) > 0.05

    def test_validation_errors(self):
        with pytest.raises(ValueError, match="n_epochs"):
            commute_shift_stream(n_epochs=0)
        with pytest.raises(ValueError, match="trajectories_per_epoch"):
            commute_shift_stream(trajectories_per_epoch=-1)
        with pytest.raises(ValueError, match="length range"):
            commute_shift_stream(min_length=5, max_length=2)
        with pytest.raises(ValueError, match="surge_at"):
            event_surge_stream(surge_at=0.8, disperse_at=0.2)
        with pytest.raises(ValueError, match="close_at"):
            route_closure_stream(close_at=0.9, reopen_at=0.1)
        with pytest.raises(ValueError, match="band"):
            route_closure_stream(band=(0.6, 0.4))
