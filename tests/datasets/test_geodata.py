"""Tests for repro.datasets.geodata — the Chicago / NYC surrogate generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.geodata import (
    CHICAGO_PARTS,
    NYC_PARTS,
    chicago_crime_surrogate,
    nyc_taxi_surrogate,
)


class TestRegionSpecs:
    def test_table3_chicago_counts(self):
        assert [spec.paper_point_count for spec in CHICAGO_PARTS] == [216_595, 173_552, 69_068]

    def test_table3_nyc_counts(self):
        assert [spec.paper_point_count for spec in NYC_PARTS] == [10_561, 42_195, 9_186]

    def test_part_domains_valid(self):
        for spec in CHICAGO_PARTS + NYC_PARTS:
            domain = spec.domain()
            assert domain.width > 0 and domain.height > 0

    def test_parts_inside_full_domain(self):
        from repro.datasets.geodata import CHICAGO_FULL_DOMAIN, NYC_FULL_DOMAIN

        for spec in CHICAGO_PARTS:
            d = spec.domain()
            assert d.x_min >= CHICAGO_FULL_DOMAIN.x_min and d.x_max <= CHICAGO_FULL_DOMAIN.x_max
            assert d.y_min >= CHICAGO_FULL_DOMAIN.y_min and d.y_max <= CHICAGO_FULL_DOMAIN.y_max
        for spec in NYC_PARTS:
            d = spec.domain()
            assert d.x_min >= NYC_FULL_DOMAIN.x_min and d.x_max <= NYC_FULL_DOMAIN.x_max


@pytest.mark.parametrize(
    "factory,parts",
    [(chicago_crime_surrogate, CHICAGO_PARTS), (nyc_taxi_surrogate, NYC_PARTS)],
    ids=["chicago", "nyc"],
)
class TestSurrogates:
    def test_part_sizes_scale(self, factory, parts):
        data = factory(scale=0.01, seed=0)
        for spec in parts:
            part = data.parts[spec.name]
            expected = max(int(spec.paper_point_count * 0.01), 50)
            assert part.size == expected

    def test_part_points_inside_their_boxes(self, factory, parts):
        data = factory(scale=0.01, seed=1)
        for spec in parts:
            part = data.parts[spec.name]
            assert part.domain.contains(part.points).all()

    def test_full_points_inside_full_domain(self, factory, parts):
        data = factory(scale=0.01, seed=2)
        assert data.domain.contains(data.points).all()

    def test_deterministic_given_seed(self, factory, parts):
        a = factory(scale=0.005, seed=3).points
        b = factory(scale=0.005, seed=3).points
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self, factory, parts):
        a = factory(scale=0.005, seed=4).points
        b = factory(scale=0.005, seed=5).points
        assert a.shape != b.shape or not np.allclose(a, b)

    def test_density_is_clustered_not_uniform(self, factory, parts):
        """Surrogates must preserve the hot-spot structure the paper's data has."""
        from repro.core.domain import GridSpec

        data = factory(scale=0.02, seed=6)
        first_part = data.parts[parts[0].name]
        grid = GridSpec(first_part.domain, 8)
        probs = grid.distribution(first_part.points).flat()
        # A clustered distribution concentrates far more mass in its top cells than the
        # uniform distribution would (top 10% of cells >> 10% of mass).
        top = np.sort(probs)[::-1][: max(1, probs.size // 10)].sum()
        assert top > 0.25

    def test_invalid_scale_rejected(self, factory, parts):
        with pytest.raises(ValueError):
            factory(scale=0.0)
