"""Unit tests for repro.kernels.em — the stencil-convolution EM kernel.

The kernel must be a numerical drop-in for the structured operator's matvecs
(parity at the float64 rounding floor), allocation-free across calls (the same
preallocated buffers come back), safe to alternate in the fused EM loop (the
double buffer never aliases its input) and honest about what it built
(:class:`KernelBuild` records the numba-vs-FFT selection and why).
"""

from __future__ import annotations

import math
import pickle

import numpy as np
import pytest

from repro.core.domain import GridSpec
from repro.core.geometry import disk_offset_array
from repro.core.operator import build_disk_operator
from repro.core.postprocess import expectation_maximization
from repro.kernels import (
    EMKernel,
    build_native_operator,
    native_kernel_signature,
    numba_available,
)
from repro.kernels.em import _next_fast_len


def _dam_masses(b_hat: int, epsilon: float) -> np.ndarray:
    offsets = disk_offset_array(b_hat)
    masses = offsets.copy()
    masses[:, 2] = offsets[:, 2] * math.exp(epsilon) + (1.0 - offsets[:, 2])
    return masses


def _operator(d: int = 12, b_hat: int = 3, epsilon: float = 3.5):
    return build_disk_operator(GridSpec.unit(d), b_hat, _dam_masses(b_hat, epsilon))


class TestNextFastLen:
    def test_small_values_are_minimal_5_smooth(self):
        def is_5_smooth(n: int) -> bool:
            for p in (2, 3, 5):
                while n % p == 0:
                    n //= p
            return n == 1

        for n in range(1, 400):
            fast = _next_fast_len(n)
            assert fast >= n
            assert is_5_smooth(fast)
            # Minimal: nothing 5-smooth lives in [n, fast).
            assert not any(is_5_smooth(m) for m in range(n, fast))

    def test_degenerate_inputs(self):
        assert _next_fast_len(0) == 1
        assert _next_fast_len(1) == 1


class TestKernelBuild:
    def test_numpy_jit_forces_fft_without_fallback(self):
        kernel = EMKernel(_operator(), jit="numpy")
        assert kernel.build.kind == "fft"
        assert kernel.build.jit == "numpy"
        assert kernel.build.fallback_reason is None
        assert kernel.build.describe() == "fft/float64"

    def test_auto_selection_matches_environment(self):
        kernel = EMKernel(_operator(), jit="auto")
        if numba_available():
            assert kernel.build.kind == "numba"
            assert kernel.build.fallback_reason is None
        else:
            # The fallback is clean *and* recorded — the satellite requirement.
            assert kernel.build.kind == "fft"
            assert "numba" in kernel.build.fallback_reason

    def test_explicit_numba_request_falls_back_cleanly_when_absent(self):
        kernel = EMKernel(_operator(), jit="numba")
        if not numba_available():
            assert kernel.build.kind == "fft"
            assert "numba" in kernel.build.fallback_reason
        # Either way the kernel must answer.
        theta = np.full(kernel.n_inputs, 1.0 / kernel.n_inputs)
        assert np.isfinite(kernel.forward(theta)).all()

    def test_signature_matches_a_fresh_build(self):
        assert native_kernel_signature() == EMKernel(_operator()).build.describe()

    def test_invalid_modes_rejected(self):
        with pytest.raises(ValueError, match="accumulate"):
            EMKernel(_operator(), accumulate="float16")
        with pytest.raises(ValueError, match="jit"):
            EMKernel(_operator(), jit="cuda")
        with pytest.raises(ValueError, match="accumulate"):
            native_kernel_signature(accumulate="float16")
        with pytest.raises(ValueError, match="jit"):
            native_kernel_signature(jit="cuda")


class TestMatvecParity:
    @pytest.mark.parametrize("d,b_hat", [(1, 2), (2, 1), (5, 2), (12, 3), (20, 5)])
    def test_forward_backward_match_operator(self, d, b_hat):
        operator = _operator(d=d, b_hat=b_hat)
        kernel = EMKernel(operator)
        rng = np.random.default_rng(d * 31 + b_hat)
        theta = rng.dirichlet(np.ones(operator.n_inputs))
        weights = rng.random(operator.n_outputs)
        np.testing.assert_allclose(
            kernel.forward(theta), operator.forward(theta), rtol=0, atol=1e-13
        )
        np.testing.assert_allclose(
            kernel.backward(weights),
            operator.backward(weights),
            rtol=0,
            atol=1e-12 * weights.sum(),
        )

    def test_buffers_are_reused_across_calls(self):
        kernel = EMKernel(_operator(d=8, b_hat=2))
        theta = np.full(kernel.n_inputs, 1.0 / kernel.n_inputs)
        first = kernel.forward(theta)
        second = kernel.forward(theta)
        assert first is second  # allocation-free: same preallocated buffer

    def test_explicit_out_buffer_respected(self):
        kernel = EMKernel(_operator(d=8, b_hat=2))
        theta = np.full(kernel.n_inputs, 1.0 / kernel.n_inputs)
        out = np.empty(kernel.n_outputs)
        assert kernel.forward(theta, out=out) is out

    def test_wrong_lengths_rejected(self):
        kernel = EMKernel(_operator(d=6, b_hat=2))
        with pytest.raises(ValueError, match="theta must have length"):
            kernel.forward(np.ones(3))
        with pytest.raises(ValueError, match="weights must have length"):
            kernel.backward(np.ones(3))


class TestFusedEMStep:
    def test_single_step_matches_plain_loop(self):
        operator = _operator(d=10, b_hat=2)
        kernel = EMKernel(operator)
        rng = np.random.default_rng(5)
        counts = rng.integers(0, 40, operator.n_outputs).astype(float)
        theta = np.full(operator.n_inputs, 1.0 / operator.n_inputs)

        predicted = np.clip(operator.forward(theta), 1e-300, None)
        plain = theta * operator.backward(counts / predicted)
        plain = np.clip(plain, 0.0, None)
        plain /= plain.sum()

        fused = kernel.em_step(theta, counts)
        np.testing.assert_allclose(fused, plain, rtol=0, atol=1e-12)

    def test_double_buffer_never_aliases_input(self):
        kernel = EMKernel(_operator(d=8, b_hat=2))
        counts = np.ones(kernel.n_outputs)
        theta = np.full(kernel.n_inputs, 1.0 / kernel.n_inputs)
        for _ in range(4):
            new_theta = kernel.em_step(theta, counts)
            assert new_theta is not theta
            assert not np.shares_memory(new_theta, theta)
            theta = new_theta

    def test_overflow_rescue_keeps_step_finite(self):
        kernel = EMKernel(_operator(d=6, b_hat=2))
        counts = np.zeros(kernel.n_outputs)
        counts[-1] = 1e305
        theta = np.zeros(kernel.n_inputs)
        theta[0] = 1.0
        stepped = kernel.em_step(theta, counts)
        assert np.isfinite(stepped).all()
        assert stepped.sum() == pytest.approx(1.0)


class TestExpectationMaximizationIntegration:
    def test_native_solve_matches_operator_solve(self):
        grid = GridSpec.unit(12)
        masses = _dam_masses(3, 3.5)
        operator = build_disk_operator(grid, 3, masses)
        native = build_native_operator(grid, 3, masses)
        rng = np.random.default_rng(9)
        cells = rng.integers(0, grid.n_cells, 20_000)
        counts = np.bincount(
            operator.sample(cells, np.random.default_rng(1)),
            minlength=operator.n_outputs,
        ).astype(float)
        plain = expectation_maximization(operator, counts, max_iterations=60, tolerance=0.0)
        fused = expectation_maximization(native, counts, max_iterations=60, tolerance=0.0)
        np.testing.assert_allclose(fused.estimate, plain.estimate, rtol=0, atol=1e-10)
        assert fused.log_likelihood == pytest.approx(plain.log_likelihood, rel=1e-9)
        assert plain.kernel is None
        assert fused.kernel == native.kernel_build.describe()

    def test_estimate_detached_from_kernel_buffers(self):
        # A second solve on the same kernel must not overwrite the first result.
        grid = GridSpec.unit(8)
        native = build_native_operator(grid, 2, _dam_masses(2, 2.5))
        counts_a = np.zeros(native.n_outputs)
        counts_a[0] = 100.0
        counts_b = np.zeros(native.n_outputs)
        counts_b[-1] = 100.0
        first = expectation_maximization(native, counts_a, max_iterations=20)
        frozen = first.estimate.copy()
        expectation_maximization(native, counts_b, max_iterations=20)
        np.testing.assert_array_equal(first.estimate, frozen)

    def test_mismatched_kernel_rejected(self):
        small = build_native_operator(GridSpec.unit(4), 1, _dam_masses(1, 2.0))
        big = _operator(d=8, b_hat=2)
        with pytest.raises(ValueError, match="kernel answers"):
            expectation_maximization(
                big, np.ones(big.n_outputs), kernel=small.em_kernel
            )

    def test_kernel_none_forces_plain_loop_on_native_operator(self):
        native = build_native_operator(GridSpec.unit(6), 2, _dam_masses(2, 2.5))
        counts = np.ones(native.n_outputs)
        result = expectation_maximization(native, counts, max_iterations=5, kernel=None)
        assert result.kernel is None


class TestFloat32Mode:
    def test_float32_build_runs_and_stays_close(self):
        operator = _operator(d=12, b_hat=3)
        f64 = EMKernel(operator, accumulate="float64")
        f32 = EMKernel(operator, accumulate="float32")
        assert f32.build.describe().endswith("float32")
        counts = np.random.default_rng(3).integers(0, 50, operator.n_outputs).astype(float)
        theta = np.full(operator.n_inputs, 1.0 / operator.n_inputs)
        a = np.array(f64.em_step(theta, counts), dtype=float)
        b = np.array(f32.em_step(theta, counts), dtype=float)
        assert np.abs(a - b).sum() < 1e-5  # float32 rounding floor, not drift


class TestPickling:
    def test_kernel_round_trips(self):
        kernel = EMKernel(_operator(d=8, b_hat=2))
        clone = pickle.loads(pickle.dumps(kernel))
        assert clone.build.kind in ("numba", "fft")
        theta = np.random.default_rng(2).dirichlet(np.ones(kernel.n_inputs))
        np.testing.assert_allclose(
            np.array(clone.forward(theta)), np.array(kernel.forward(theta)), atol=1e-13
        )

    def test_native_operator_round_trips_and_rebuilds_lazily(self):
        native = build_native_operator(GridSpec.unit(8), 2, _dam_masses(2, 3.0))
        native.forward(np.full(native.n_inputs, 1.0 / native.n_inputs))  # build kernel
        clone = pickle.loads(pickle.dumps(native))
        assert clone._em_kernel is None  # dropped, rebuilt on demand
        theta = np.random.default_rng(4).dirichlet(np.ones(native.n_inputs))
        np.testing.assert_allclose(clone.forward(theta), native.forward(theta), atol=1e-13)
        assert clone.kernel_build.describe() == native.kernel_build.describe()
