"""Differential parity suite: native vs operator vs dense, property-based.

The contract of ``backend="native"`` is *numerical indistinguishability*: the
sampler and the trajectory walk must be **bit-identical** to the operator
backend (exact integer order statistics, same RNG consumption), and the EM
matvecs must agree with both the operator and the dense matrix to the float64
rounding floor.  Domains come from :mod:`strategies` and include the
planet-scale coordinate offsets where float conditioning is worst.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings

import strategies
from repro.core.dam import DiscreteDAM
from repro.core.domain import GridSpec
from repro.core.geometry import disk_offset_array
from repro.core.huem import DiscreteHUEM
from repro.core.operator import build_disk_operator
from repro.core.postprocess import expectation_maximization
from repro.kernels import (
    background_rank_map,
    build_native_operator,
    inverse_cdf_draws,
    numba_available,
)
from repro.trajectory.engine import TrajectoryEngine

SLOW_SETTINGS = settings(
    max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


def _dam_masses(b_hat: int, epsilon: float) -> np.ndarray:
    offsets = disk_offset_array(b_hat)
    masses = offsets.copy()
    masses[:, 2] = offsets[:, 2] * math.exp(epsilon) + (1.0 - offsets[:, 2])
    return masses


class TestEMParity:
    @given(
        strategies.grid_sides(2, 7),
        strategies.epsilons(),
        strategies.b_hats(),
        strategies.seeds(),
    )
    @SLOW_SETTINGS
    def test_native_vs_operator_vs_dense_estimates(self, d, epsilon, b_hat, seed):
        grid = GridSpec.unit(d)
        masses = _dam_masses(b_hat, epsilon)
        operator = build_disk_operator(grid, b_hat, masses)
        native = build_native_operator(grid, b_hat, masses)
        rng = np.random.default_rng(seed)
        cells = rng.integers(0, grid.n_cells, 3000)
        counts = np.bincount(
            operator.sample(cells, rng), minlength=operator.n_outputs
        ).astype(float)
        kwargs = dict(max_iterations=50, tolerance=0.0)
        via_native = expectation_maximization(native, counts, **kwargs)
        via_operator = expectation_maximization(operator, counts, **kwargs)
        via_dense = expectation_maximization(operator.to_dense(), counts, **kwargs)
        # Calibrated tolerance: ~1e-15 relative per matvec, amplified across 50
        # multiplicative EM iterations — 1e-9 absolute on a unit-sum estimate
        # leaves two orders of margin over the worst observed drift.
        np.testing.assert_allclose(
            via_native.estimate, via_operator.estimate, rtol=0, atol=1e-9
        )
        np.testing.assert_allclose(
            via_native.estimate, via_dense.estimate, rtol=0, atol=1e-9
        )
        assert via_native.kernel == native.kernel_build.describe()
        assert via_operator.kernel is None

    @pytest.mark.parametrize("mechanism_cls", [DiscreteDAM, DiscreteHUEM])
    def test_mechanism_backend_estimates_agree(self, mechanism_cls):
        grid = GridSpec.unit(6)
        via_native = mechanism_cls(grid, 3.5, b_hat=2, backend="native")
        via_operator = mechanism_cls(grid, 3.5, b_hat=2, backend="operator")
        counts = np.zeros(via_native.output_domain_size())
        counts[: grid.n_cells] = np.random.default_rng(3).integers(0, 50, grid.n_cells)
        a = via_native.estimate(counts, int(counts.sum()))
        b = via_operator.estimate(counts, int(counts.sum()))
        np.testing.assert_allclose(a.flat(), b.flat(), rtol=0, atol=1e-9)

    def test_native_backend_records_its_kernel(self):
        mech = DiscreteDAM(GridSpec.unit(5), 2.5, b_hat=2, backend="native")
        assert mech.kernel_build is not None
        if numba_available():
            assert mech.kernel_build.kind == "numba"
        else:
            # Clean fallback, with the reason on record — never a hard failure.
            assert mech.kernel_build.kind == "fft"
            assert "numba" in mech.kernel_build.fallback_reason
        assert DiscreteDAM(GridSpec.unit(5), 2.5, b_hat=2).kernel_build is None


class TestSamplerParity:
    @given(
        strategies.grid_sides(2, 7),
        strategies.epsilons(),
        strategies.b_hats(),
        strategies.seeds(),
    )
    @SLOW_SETTINGS
    def test_reports_bit_identical_to_operator(self, d, epsilon, b_hat, seed):
        grid = GridSpec.unit(d)
        masses = _dam_masses(b_hat, epsilon)
        operator = build_disk_operator(grid, b_hat, masses)
        native = build_native_operator(grid, b_hat, masses)
        cells = np.random.default_rng(seed).integers(0, grid.n_cells, 5000)
        a = operator.sample(cells, np.random.default_rng(seed + 1))
        b = native.sample(cells, np.random.default_rng(seed + 1))
        np.testing.assert_array_equal(a, b)

    @given(strategies.seeds())
    @SLOW_SETTINGS
    def test_rank_map_equals_per_cell_searchsorted(self, seed):
        operator = build_disk_operator(GridSpec.unit(9), 2, _dam_masses(2, 3.0))
        operator.sample(
            np.zeros(1, dtype=np.int64), np.random.default_rng(0)
        )  # build the order-statistics cache
        rank_shift = operator._rank_shift
        rng = np.random.default_rng(seed)
        n = 4000
        cells = rng.integers(0, operator.n_inputs, n)
        rank = rng.integers(0, operator.n_outputs - rank_shift.shape[0], n)
        expected = rank + np.array(
            [
                np.searchsorted(rank_shift[:, cell], r, side="right")
                for cell, r in zip(cells, rank)
            ]
        )
        np.testing.assert_array_equal(
            background_rank_map(rank_shift, cells, rank), expected
        )

    def test_empty_batch(self):
        operator = build_disk_operator(GridSpec.unit(4), 1, _dam_masses(1, 2.0))
        operator.sample(np.zeros(1, dtype=np.int64), np.random.default_rng(0))
        empty = np.empty(0, dtype=np.int64)
        assert background_rank_map(operator._rank_shift, empty, empty).shape == (0,)


class TestWalkParity:
    @given(strategies.domains(), strategies.seeds())
    @SLOW_SETTINGS
    def test_synthesis_bit_identical_across_backends(self, domain, seed):
        grid = GridSpec(domain, 10)
        via_operator = TrajectoryEngine.build(grid, 2.0, max_length=20)
        via_native = TrajectoryEngine.build(grid, 2.0, max_length=20, backend="native")
        rng = np.random.default_rng(seed)
        trajectories = [
            domain.denormalise(rng.random((int(rng.integers(2, 15)), 2)))
            for _ in range(50)
        ]
        model = via_operator.fit(trajectories, seed=seed)
        a = via_operator.synthesize(model, 200, seed=seed + 1)
        b = via_native.synthesize(model, 200, seed=seed + 1)
        assert len(a) == len(b)
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x, y)

    @given(strategies.seeds())
    @SLOW_SETTINGS
    def test_inverse_cdf_draws_match_searchsorted(self, seed):
        probabilities = np.random.default_rng(seed).dirichlet(np.ones(9))
        reference = np.searchsorted(
            np.cumsum(probabilities),
            np.random.default_rng(seed + 1).random((40, 7)),
            side="right",
        )
        np.clip(reference, 0, 8, out=reference)
        drawn = inverse_cdf_draws(
            np.random.default_rng(seed + 1), probabilities, (40, 7), dtype=np.int16
        )
        assert drawn.dtype == np.int16
        np.testing.assert_array_equal(drawn, reference)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            TrajectoryEngine.build(GridSpec.unit(5), 2.0, backend="gpu")
