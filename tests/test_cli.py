"""Tests for the command-line interface (repro.cli / python -m repro)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import build_parser, main


@pytest.fixture
def csv_points(tmp_path):
    rng = np.random.default_rng(0)
    points = np.clip(rng.normal(0.5, 0.15, size=(800, 2)), 0, 1)
    path = tmp_path / "points.csv"
    np.savetxt(path, points, delimiter=",")
    return path


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_estimate_defaults(self):
        args = build_parser().parse_args(["estimate"])
        assert args.epsilon == 3.5
        assert args.d == 12
        assert args.mechanism == "dam"

    def test_figure_choices(self):
        args = build_parser().parse_args(["figure", "fig8"])
        assert args.name == "fig8"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "fig99"])


class TestEstimateCommand:
    def test_estimate_from_csv(self, csv_points, capsys):
        code = main(["estimate", "--input", str(csv_points), "--d", "6", "--epsilon", "3.0"])
        assert code == 0
        out = capsys.readouterr().out
        assert "W2(true, estimate)" in out
        assert "users: 800" in out

    def test_estimate_with_heatmap(self, csv_points, capsys):
        code = main(["estimate", "--input", str(csv_points), "--d", "5", "--heatmap"])
        assert code == 0
        out = capsys.readouterr().out
        assert "true" in out and "estimated" in out

    def test_estimate_builtin_dataset(self, capsys):
        code = main(
            ["estimate", "--dataset", "SZipf", "--scale", "0.005", "--d", "5", "--seed", "1"]
        )
        assert code == 0
        assert "mechanism: DAM" in capsys.readouterr().out

    def test_estimate_rejects_both_sources(self, csv_points):
        with pytest.raises(SystemExit):
            main(["estimate", "--input", str(csv_points), "--dataset", "Normal"])

    def test_estimate_rejects_bad_csv(self, tmp_path):
        path = tmp_path / "bad.csv"
        np.savetxt(path, np.zeros((5, 3)), delimiter=",")
        with pytest.raises(SystemExit):
            main(["estimate", "--input", str(path)])

    def test_huem_mechanism_selected(self, csv_points, capsys):
        code = main(["estimate", "--input", str(csv_points), "--d", "5", "--mechanism", "huem"])
        assert code == 0
        assert "mechanism: HUEM" in capsys.readouterr().out

    def test_estimate_with_workers_matches_serial(self, csv_points, capsys):
        serial_code = main(
            ["estimate", "--input", str(csv_points), "--d", "5", "--seed", "2"]
        )
        serial_out = capsys.readouterr().out
        parallel_code = main(
            [
                "estimate",
                "--input",
                str(csv_points),
                "--d",
                "5",
                "--seed",
                "2",
                "--workers",
                "2",
                "--chunk-size",
                "200",
            ]
        )
        parallel_out = capsys.readouterr().out
        assert serial_code == parallel_code == 0
        # Same W2 line and same printed estimate: the parallel path is bit-identical.
        assert serial_out == parallel_out

    def test_estimate_rejects_bad_workers(self, csv_points):
        with pytest.raises(SystemExit):
            main(["estimate", "--input", str(csv_points), "--workers", "0"])

    @pytest.mark.parametrize("chunk_size", ["0", "-5"])
    def test_estimate_rejects_bad_chunk_size_with_workers(self, csv_points, chunk_size):
        with pytest.raises(SystemExit):
            main([
                "estimate",
                "--input",
                str(csv_points),
                "--workers",
                "2",
                "--chunk-size",
                chunk_size,
            ])


class TestFigureCommand:
    def test_fig8_smoke_run(self, capsys, tmp_path):
        csv_path = tmp_path / "fig8.csv"
        json_path = tmp_path / "fig8.json"
        code = main(
            [
                "figure",
                "fig8",
                "--profile",
                "smoke",
                "--csv",
                str(csv_path),
                "--json",
                str(json_path),
                "--markdown",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "DAM" in out
        assert "| dataset |" in out
        assert csv_path.exists() and json_path.exists()

    def test_fig8_workers_and_cache_dir(self, capsys, tmp_path):
        cache_dir = tmp_path / "cache"
        args = [
            "figure", "fig8", "--profile", "smoke", "--workers", "2", "--cache-dir", str(cache_dir)
        ]
        assert main(args) == 0
        cold_out = capsys.readouterr().out
        assert any(cache_dir.rglob("*.json"))
        # Warm re-run answers every cell from the cache with identical output.
        assert main(args) == 0
        assert capsys.readouterr().out == cold_out

    def test_figure_rejects_bad_workers(self):
        with pytest.raises(SystemExit):
            main(["figure", "fig8", "--workers", "0"])


class TestQueryCommand:
    def test_query_from_csv(self, csv_points, capsys):
        code = main([
            "query",
            "--input",
            str(csv_points),
            "--d",
            "6",
            "--n-queries",
            "200",
            "--epsilon",
            "4.0",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "range_mass" in out
        assert "range-query MAE" in out
        assert "hotspots" in out
        assert "of mass concentrates in" in out

    def test_query_save_and_replay_roundtrip(self, csv_points, tmp_path, capsys):
        log_path = tmp_path / "workload.npz"
        assert main([
            "query",
            "--input",
            str(csv_points),
            "--d",
            "5",
            "--n-queries",
            "50",
            "--save-log",
            str(log_path),
        ]) == 0
        assert log_path.exists()
        first = capsys.readouterr().out
        assert main([
            "query",
            "--input",
            str(csv_points),
            "--d",
            "5",
            "--replay",
            str(log_path),
        ]) == 0
        replayed = capsys.readouterr().out
        # Same estimate (same seed) + same workload => identical accuracy line.
        mae_line = [line for line in first.splitlines() if "MAE" in line]
        assert mae_line and mae_line[0] in replayed

    def test_query_disable_extras(self, csv_points, capsys):
        code = main([
            "query",
            "--input",
            str(csv_points),
            "--d",
            "5",
            "--n-queries",
            "20",
            "--top-k",
            "0",
            "--quantiles",
            "",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "hotspots" not in out
        assert "concentrates" not in out

    def test_query_rejects_bad_parameters(self, csv_points):
        with pytest.raises(SystemExit):
            main(["query", "--input", str(csv_points), "--workers", "0"])
        with pytest.raises(SystemExit):
            main(["query", "--input", str(csv_points), "--n-queries", "0"])


class TestTrajectoryCommand:
    def test_compare_all_mechanisms(self, csv_points, capsys):
        code = main([
            "trajectory",
            "--input",
            str(csv_points),
            "--mode",
            "compare",
            "--n-trajectories",
            "40",
            "--max-length",
            "12",
            "--routing-d",
            "25",
            "--d",
            "6",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "workload: 40 trajectories" in out
        for label in ("LDPTrace", "PivotTrace", "DAM"):
            assert label in out

    def test_compare_single_mechanism(self, csv_points, capsys):
        code = main([
            "trajectory",
            "--input",
            str(csv_points),
            "--mode",
            "compare",
            "--mechanism",
            "ldptrace",
            "--n-trajectories",
            "30",
            "--max-length",
            "10",
            "--routing-d",
            "25",
            "--d",
            "5",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "LDPTrace" in out and "PivotTrace" not in out

    def test_fit_prints_model(self, csv_points, capsys):
        code = main([
            "trajectory",
            "--input",
            str(csv_points),
            "--mode",
            "fit",
            "--n-trajectories",
            "30",
            "--max-length",
            "10",
            "--routing-d",
            "25",
            "--d",
            "5",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "length distribution" in out
        assert "top start cells" in out
        assert "direction distribution" in out

    def test_synthesize_with_workers_and_export(self, csv_points, tmp_path, capsys):
        output = tmp_path / "synthetic.csv"
        code = main([
            "trajectory",
            "--input",
            str(csv_points),
            "--mode",
            "synthesize",
            "--n-trajectories",
            "30",
            "--max-length",
            "10",
            "--routing-d",
            "25",
            "--d",
            "5",
            "--workers",
            "2",
            "--n-output",
            "25",
            "--top-k",
            "2",
            "--save-output",
            str(output),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "synthesized 25 trajectories" in out
        assert "point-density W2" in out
        assert "top origin->destination" in out
        assert "length histogram" in out
        rows = np.loadtxt(output, delimiter=",", ndmin=2)
        assert rows.shape[1] == 3
        assert np.unique(rows[:, 0]).shape[0] == 25

    def test_workers_match_serial(self, csv_points, capsys):
        args = [
            "trajectory",
            "--input",
            str(csv_points),
            "--mode",
            "fit",
            "--n-trajectories",
            "30",
            "--max-length",
            "10",
            "--routing-d",
            "25",
            "--d",
            "5",
        ]
        assert main(args) == 0
        serial = capsys.readouterr().out
        assert main(args + ["--workers", "2"]) == 0
        pooled = capsys.readouterr().out
        # Everything after the fit-timing line (the model summary) is identical.
        assert serial.splitlines()[2:] == pooled.splitlines()[2:]

    def test_rejects_bad_parameters(self, csv_points):
        with pytest.raises(SystemExit):
            main(["trajectory", "--input", str(csv_points), "--workers", "0"])
        with pytest.raises(SystemExit):
            main(["trajectory", "--input", str(csv_points), "--n-trajectories", "0"])
        with pytest.raises(SystemExit):
            main([
                "trajectory",
                "--input",
                str(csv_points),
                "--mode",
                "synthesize",
                "--n-output",
                "-1",
            ])


class TestStreamCommand:
    STREAM_ARGS = [
        "stream", "--epochs", "5", "--users-per-epoch", "300", "--window", "2", "--d", "6"
    ]

    def test_stream_defaults(self):
        args = build_parser().parse_args(["stream"])
        assert args.workload == "point"
        # Resolved per workload at run time: shifting-hotspot / commute-shift.
        assert args.scenario is None
        assert args.window == 8
        assert args.decay is None

    def test_stream_runs_and_reports_epochs(self, capsys):
        assert main(self.STREAM_ARGS) == 0
        out = capsys.readouterr().out
        assert "scenario: shifting-hotspot" in out
        assert "mean MAE:" in out
        # One row per epoch plus the header.
        rows = [line for line in out.splitlines() if line.strip().startswith(tuple("0123456789"))]
        assert len(rows) == 5

    @pytest.mark.parametrize("scenario", ["appearing-cluster", "diurnal-mixture"])
    def test_stream_scenarios(self, scenario, capsys):
        assert main(self.STREAM_ARGS + ["--scenario", scenario]) == 0
        assert f"scenario: {scenario}" in capsys.readouterr().out

    def test_stream_decay_and_cold_start(self, capsys):
        assert main(self.STREAM_ARGS + ["--decay", "0.8", "--cold-start"]) == 0
        assert "decay: 0.8" in capsys.readouterr().out

    def test_stream_save_and_replay_is_bit_identical(self, tmp_path, capsys):
        log_path = tmp_path / "session.json"
        assert main(self.STREAM_ARGS + ["--save-log", str(log_path)]) == 0
        assert log_path.exists()
        capsys.readouterr()
        assert main(["stream", "--replay", str(log_path)]) == 0
        out = capsys.readouterr().out
        assert "max |MAE - logged| = 0.00e+00" in out
        assert "iterations identical" in out

    def test_stream_workers_match_serial(self, capsys):
        assert main(self.STREAM_ARGS + ["--seed", "3"]) == 0
        serial = capsys.readouterr().out
        assert main(self.STREAM_ARGS + ["--seed", "3", "--workers", "2"]) == 0
        pooled = capsys.readouterr().out
        # Identical per-epoch MAE/iteration table (only timings may differ).
        def table(text):
            return [" ".join(line.split()[:4]) for line in text.splitlines()
                    if line.strip() and line.split()[0].isdigit()]
        assert table(serial) == table(pooled)

    def test_stream_rejects_bad_parameters(self):
        with pytest.raises(SystemExit):
            main(["stream", "--workers", "0"])
        with pytest.raises(SystemExit):
            main(["stream", "--epochs", "0"])
        with pytest.raises(SystemExit):
            main(["stream", "--users-per-epoch", "0"])
        with pytest.raises(SystemExit):
            main(["stream", "--window", "0"])
        with pytest.raises(SystemExit):
            main(["stream", "--decay", "1.5"])

    def test_stream_replay_rejects_epoch_mismatch(self, tmp_path, capsys):
        log_path = tmp_path / "session.json"
        assert main(self.STREAM_ARGS + ["--save-log", str(log_path)]) == 0
        import json
        log = json.loads(log_path.read_text())
        log["epochs"] = log["epochs"][:-1]
        log_path.write_text(json.dumps(log))
        with pytest.raises(SystemExit, match="replay mismatch"):
            main(["stream", "--replay", str(log_path)])


class TestStreamTrajectoryWorkload:
    TRAJ_ARGS = [
        "stream", "--workload", "trajectory", "--epochs", "4",
        "--trajectories-per-epoch", "40", "--window", "2", "--d", "6",
        "--max-length", "10", "--n-synthetic", "80",
    ]

    def test_trajectory_workload_runs_and_reports_w2(self, capsys):
        assert main(self.TRAJ_ARGS) == 0
        out = capsys.readouterr().out
        assert "workload: trajectory" in out
        assert "scenario: commute-shift" in out
        assert "mean W2:" in out
        rows = [line for line in out.splitlines() if line.strip().startswith(tuple("0123456789"))]
        assert len(rows) == 4

    @pytest.mark.parametrize("scenario", ["event-surge", "route-closure"])
    def test_trajectory_scenarios(self, scenario, capsys):
        assert main(self.TRAJ_ARGS + ["--scenario", scenario]) == 0
        assert f"scenario: {scenario}" in capsys.readouterr().out

    def test_trajectory_save_and_replay_is_bit_identical(self, tmp_path, capsys):
        log_path = tmp_path / "session.json"
        assert main(self.TRAJ_ARGS + ["--save-log", str(log_path)]) == 0
        import json
        assert json.loads(log_path.read_text())["config"]["workload"] == "trajectory"
        capsys.readouterr()
        assert main(["stream", "--replay", str(log_path)]) == 0
        out = capsys.readouterr().out
        assert "workload: trajectory" in out
        assert "max |W2 - logged| = 0.00e+00" in out

    def test_trajectory_workers_match_serial(self, capsys):
        assert main(self.TRAJ_ARGS + ["--seed", "3"]) == 0
        serial = capsys.readouterr().out
        assert main(self.TRAJ_ARGS + ["--seed", "3", "--workers", "2"]) == 0
        pooled = capsys.readouterr().out
        def table(text):
            return [" ".join(line.split()[:3]) for line in text.splitlines()
                    if line.strip() and line.split()[0].isdigit()]
        assert table(serial) == table(pooled)

    def test_rejects_scenario_of_other_workload(self):
        with pytest.raises(SystemExit, match="other workload"):
            main(self.TRAJ_ARGS + ["--scenario", "shifting-hotspot"])
        with pytest.raises(SystemExit, match="other workload"):
            main(["stream", "--scenario", "commute-shift"])

    def test_rejects_bad_trajectory_parameters(self):
        with pytest.raises(SystemExit):
            main(self.TRAJ_ARGS[:3] + ["--trajectories-per-epoch", "0"])
        with pytest.raises(SystemExit):
            main(self.TRAJ_ARGS[:3] + ["--n-synthetic", "0"])


class TestServeCommand:
    SERVE_ARGS = [
        "serve", "--epochs", "2", "--users-per-epoch", "300", "--window", "2",
        "--d", "6", "--serve-workers", "1", "--queries-per-epoch", "400",
        "--batch-rows", "128",
    ]

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.scenario == "shifting-hotspot"
        assert args.serve_workers == 2
        assert args.batch_rows == 4096

    def test_serve_runs_and_verifies_bit_identity(self, capsys):
        assert main(self.SERVE_ARGS) == 0
        out = capsys.readouterr().out
        assert "scenario: shifting-hotspot" in out
        assert "serve workers: 1" in out
        assert "queries/s" in out
        assert "worker answers bit-identical to in-process engine: yes" in out
        # One served-epoch row per ingest epoch.
        rows = [line for line in out.splitlines()
                if line.strip() and line.split()[0].isdigit()]
        assert len(rows) == 2

    def test_serve_http_routes_workload_through_the_front(self, capsys):
        assert main(self.SERVE_ARGS + ["--http", "127.0.0.1:0"]) == 0
        out = capsys.readouterr().out
        assert "HTTP front listening on http://127.0.0.1:" in out
        assert "HTTP front answers bit-identical to in-process engine: yes" in out

    def test_serve_rejects_bad_parameters(self):
        with pytest.raises(SystemExit):
            main(["serve", "--serve-workers", "0"])
        with pytest.raises(SystemExit):
            main(["serve", "--epochs", "0"])
        with pytest.raises(SystemExit):
            main(["serve", "--queries-per-epoch", "0"])
        with pytest.raises(SystemExit):
            main(["serve", "--batch-rows", "0"])
        with pytest.raises(SystemExit):
            main(["serve", "--decay", "2.0"])
        with pytest.raises(SystemExit):
            main(["serve", "--http", "no-port-here"])
        with pytest.raises(SystemExit):
            main(["serve", "--http", ":8080"])
