"""Tests for repro.metrics.sliced — Radon projections and the sliced Wasserstein distance."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.domain import GridDistribution, GridSpec
from repro.metrics.sliced import projected_wasserstein, radon_projection, sliced_wasserstein
from repro.metrics.wasserstein import wasserstein2_grid


class TestRadonProjection:
    def test_weights_preserved(self, clustered_distribution):
        projection = radon_projection(clustered_distribution, 0.3)
        assert projection.weights.sum() == pytest.approx(1.0)

    def test_axis_aligned_projection_is_marginal(self, clustered_distribution):
        """Projecting onto theta=0 gives the x-marginal of the grid distribution."""
        projection = radon_projection(clustered_distribution, 0.0)
        x_marginal = clustered_distribution.probabilities.sum(axis=0)
        np.testing.assert_allclose(np.sort(projection.weights), np.sort(x_marginal), atol=1e-12)

    def test_vertical_projection_is_y_marginal(self, clustered_distribution):
        projection = radon_projection(clustered_distribution, math.pi / 2)
        y_marginal = clustered_distribution.probabilities.sum(axis=1)
        np.testing.assert_allclose(np.sort(projection.weights), np.sort(y_marginal), atol=1e-12)

    def test_diagonal_projection_merges_antidiagonal_cells(self, unit_grid5):
        uniform = GridDistribution.uniform(unit_grid5)
        projection = radon_projection(uniform, math.pi / 4)
        # A 5x5 grid projected on the diagonal has 9 distinct positions.
        assert projection.positions.shape[0] == 9

    def test_positions_sorted(self, clustered_distribution):
        projection = radon_projection(clustered_distribution, 1.1)
        assert np.all(np.diff(projection.positions) >= 0)


class TestProjectedWasserstein:
    def test_identical_distributions(self, clustered_distribution):
        assert projected_wasserstein(
            clustered_distribution,
            clustered_distribution,
            0.7,
        ) == pytest.approx(0.0, abs=1e-12)

    def test_horizontal_shift_detected_by_x_projection(self, unit_grid5):
        a = np.zeros((5, 5))
        a[2, 0] = 1.0
        b = np.zeros((5, 5))
        b[2, 4] = 1.0
        dist_a, dist_b = GridDistribution(unit_grid5, a), GridDistribution(unit_grid5, b)
        assert projected_wasserstein(dist_a, dist_b, 0.0) == pytest.approx(0.8, abs=1e-9)
        # The same shift is invisible to the vertical projection.
        assert projected_wasserstein(dist_a, dist_b, math.pi / 2) == pytest.approx(0.0, abs=1e-9)


class TestSlicedWasserstein:
    def test_zero_for_identical(self, clustered_distribution):
        assert sliced_wasserstein(
            clustered_distribution,
            clustered_distribution,
        ) == pytest.approx(0.0, abs=1e-12)

    def test_positive_for_different(self, clustered_distribution, uniform_distribution):
        assert sliced_wasserstein(clustered_distribution, uniform_distribution) > 0

    def test_symmetry(self, clustered_distribution, uniform_distribution):
        ab = sliced_wasserstein(clustered_distribution, uniform_distribution)
        ba = sliced_wasserstein(uniform_distribution, clustered_distribution)
        assert ab == pytest.approx(ba, rel=1e-9)

    def test_sliced_lower_bounds_full_wasserstein(
        self, clustered_distribution, uniform_distribution
    ):
        """Each 1-D projection is a contraction, so SW_p <= W_p."""
        sw2 = sliced_wasserstein(
            clustered_distribution, uniform_distribution, p=2.0, n_projections=64
        )
        w2 = wasserstein2_grid(clustered_distribution, uniform_distribution)
        assert sw2 <= w2 + 1e-9

    def test_monte_carlo_close_to_deterministic(self, clustered_distribution, uniform_distribution):
        deterministic = sliced_wasserstein(
            clustered_distribution, uniform_distribution, n_projections=128
        )
        monte_carlo = sliced_wasserstein(
            clustered_distribution,
            uniform_distribution,
            n_projections=128,
            random_directions=True,
            seed=0,
        )
        assert monte_carlo == pytest.approx(deterministic, rel=0.15)

    def test_more_projections_stabilise(self, clustered_distribution, corner_distribution):
        coarse = sliced_wasserstein(clustered_distribution, corner_distribution, n_projections=8)
        fine = sliced_wasserstein(clustered_distribution, corner_distribution, n_projections=64)
        finer = sliced_wasserstein(clustered_distribution, corner_distribution, n_projections=128)
        assert abs(fine - finer) <= abs(coarse - finer) + 1e-9

    def test_incompatible_grids_rejected(self, clustered_distribution):
        other = GridDistribution.uniform(GridSpec.unit(4))
        with pytest.raises(ValueError):
            sliced_wasserstein(clustered_distribution, other)

    def test_invalid_projections_rejected(self, clustered_distribution, uniform_distribution):
        with pytest.raises(ValueError):
            sliced_wasserstein(clustered_distribution, uniform_distribution, n_projections=0)

    def test_dam_optimality_objective(self, unit_grid5):
        """Theorem V.2's intuition: DAM separates two inputs' output distributions more
        than HUEM does, measured by the sliced Wasserstein distance."""
        from repro.core.dam import DiscreteDAM
        from repro.core.huem import DiscreteHUEM

        eps, b_hat = 2.0, 2
        dam = DiscreteDAM(unit_grid5, eps, b_hat=b_hat)
        huem = DiscreteHUEM(unit_grid5, eps, b_hat=b_hat)
        cell_a, cell_b = unit_grid5.rowcol_to_cell(0, 0), unit_grid5.rowcol_to_cell(4, 4)

        def output_separation(mechanism):
            # Embed each output row on the output-domain grid and compare.
            domain_cells = mechanism.output_domain.cells
            side = int(domain_cells[:, 0].max() - domain_cells[:, 0].min() + 1)
            offset = domain_cells.min(axis=0)
            grid = GridSpec.unit(side)
            def to_grid(row):
                table = np.zeros((side, side))
                for (col, r), prob in zip(domain_cells, row):
                    table[r - offset[1], col - offset[0]] = prob
                return GridDistribution(grid, table)
            return sliced_wasserstein(
                to_grid(mechanism.transition[cell_a]),
                to_grid(mechanism.transition[cell_b]),
                p=1.0,
                n_projections=32,
            )

        assert output_separation(dam) >= output_separation(huem) - 1e-6
