"""Tests for repro.metrics.local_privacy — Eq. 15/16 and the ε calibration."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.dam import DiscreteDAM
from repro.core.domain import GridSpec
from repro.mechanisms.sem_geo_i import SEMGeoI
from repro.metrics.local_privacy import (
    calibrate_epsilon,
    local_privacy,
    local_privacy_of_mechanism,
)
from repro.utils.histogram import pairwise_cell_distances


@pytest.fixture(scope="module")
def grid4() -> GridSpec:
    return GridSpec.unit(4)


@pytest.fixture(scope="module")
def distances4() -> np.ndarray:
    return pairwise_cell_distances(4)


class TestLocalPrivacy:
    def test_identity_mechanism_has_zero_privacy(self, distances4):
        """Reporting the true cell lets the adversary recover it exactly: LP = 0."""
        assert local_privacy(np.eye(16), distances4) == pytest.approx(0.0, abs=1e-12)

    def test_uniform_mechanism_has_maximal_privacy(self, distances4):
        """A report independent of the input gives the adversary nothing."""
        uniform = np.full((16, 16), 1.0 / 16)
        value = local_privacy(uniform, distances4)
        # The adversary's best guess is unrelated to the truth: LP equals the mean
        # pairwise distance between cells.
        assert value == pytest.approx(distances4.mean(), rel=1e-9)

    def test_monotone_in_budget(self, grid4):
        """More budget -> sharper reports -> less privacy."""
        values = [
            local_privacy_of_mechanism(DiscreteDAM(grid4, eps, b_hat=1)) for eps in (0.5, 2.0, 6.0)
        ]
        assert values[0] > values[1] > values[2]

    def test_positive_for_dam(self, grid4):
        assert local_privacy_of_mechanism(DiscreteDAM(grid4, 3.5, b_hat=1)) > 0

    def test_shape_mismatch_rejected(self, distances4):
        with pytest.raises(ValueError):
            local_privacy(np.eye(9), distances4)

    def test_prior_shape_checked(self, distances4):
        with pytest.raises(ValueError):
            local_privacy(np.eye(16), distances4, prior=np.ones(4))

    def test_extended_output_domain_supported(self, grid4):
        """DAM's output domain is larger than the input grid; LP must still work."""
        mech = DiscreteDAM(grid4, 2.0, b_hat=2)
        assert mech.output_domain_size() > grid4.n_cells
        assert local_privacy_of_mechanism(mech) > 0


class TestCalibration:
    def test_sem_matches_dam_local_privacy(self, grid4):
        """The Section VII-B procedure: find eps' with LP_SEM(eps') = LP_DAM(eps)."""
        dam = DiscreteDAM(grid4, 3.5, b_hat=1)
        target = local_privacy_of_mechanism(dam)
        result = calibrate_epsilon(lambda e: SEMGeoI(grid4, e), target)
        assert result.converged
        assert result.local_privacy == pytest.approx(target, rel=5e-3)

    def test_higher_dam_budget_needs_higher_sem_budget(self, grid4):
        results = []
        for eps in (1.4, 3.5):
            target = local_privacy_of_mechanism(DiscreteDAM(grid4, eps, b_hat=1))
            results.append(calibrate_epsilon(lambda e: SEMGeoI(grid4, e), target).epsilon)
        assert results[1] > results[0]

    def test_unreachable_target_clamps(self, grid4):
        result = calibrate_epsilon(lambda e: SEMGeoI(grid4, e), 1e9)
        assert not result.converged
        assert result.epsilon == pytest.approx(0.05)

    def test_invalid_target_rejected(self, grid4):
        with pytest.raises(ValueError):
            calibrate_epsilon(lambda e: SEMGeoI(grid4, e), 0.0)
