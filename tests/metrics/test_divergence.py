"""Tests for repro.metrics.divergence."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

import strategies
from repro.core.domain import GridDistribution, GridSpec
from repro.metrics.divergence import (
    chi_square_statistic,
    js_divergence,
    kl_divergence,
    mean_absolute_error,
    mean_squared_error,
    total_variation,
)


@pytest.fixture
def pair(rng):
    grid = GridSpec.unit(4)
    a = GridDistribution(grid, rng.dirichlet(np.ones(16)).reshape(4, 4))
    b = GridDistribution(grid, rng.dirichlet(np.ones(16)).reshape(4, 4))
    return a, b


class TestKL:
    def test_zero_for_identical(self, pair):
        a, _ = pair
        assert kl_divergence(a, a) == pytest.approx(0.0, abs=1e-9)

    def test_non_negative(self, pair):
        a, b = pair
        assert kl_divergence(a, b) >= 0

    def test_asymmetric_in_general(self, pair):
        a, b = pair
        assert kl_divergence(a, b) != pytest.approx(kl_divergence(b, a), rel=1e-3)

    def test_accepts_plain_arrays(self):
        assert kl_divergence(np.array([0.5, 0.5]), np.array([0.9, 0.1])) > 0

    def test_smoothing_keeps_finite(self):
        a = np.array([1.0, 0.0])
        b = np.array([0.0, 1.0])
        assert np.isfinite(kl_divergence(a, b))


class TestJS:
    def test_symmetric(self, pair):
        a, b = pair
        assert js_divergence(a, b) == pytest.approx(js_divergence(b, a), rel=1e-9)

    def test_bounded_by_ln2(self):
        a = np.array([1.0, 0.0])
        b = np.array([0.0, 1.0])
        assert js_divergence(a, b) <= math.log(2) + 1e-6

    def test_zero_for_identical(self, pair):
        a, _ = pair
        assert js_divergence(a, a) == pytest.approx(0.0, abs=1e-9)


class TestTotalVariationAndErrors:
    def test_tv_range(self, pair):
        a, b = pair
        assert 0 <= total_variation(a, b) <= 1

    def test_tv_matches_griddistribution_method(self, pair):
        a, b = pair
        assert total_variation(a, b) == pytest.approx(a.total_variation(b))

    def test_mae_and_mse_zero_for_identical(self, pair):
        a, _ = pair
        assert mean_absolute_error(a, a) == 0
        assert mean_squared_error(a, a) == 0

    def test_mse_smaller_than_mae_for_small_errors(self, pair):
        a, b = pair
        assert mean_squared_error(a, b) <= mean_absolute_error(a, b)

    def test_size_mismatch_rejected(self):
        with pytest.raises(ValueError):
            total_variation(np.array([0.5, 0.5]), np.array([0.25, 0.25, 0.5]))

    def test_metrics_ignore_spatial_structure(self, unit_grid5):
        """The paper's motivating observation: TV cannot tell near from far misplacement."""
        from repro.metrics.wasserstein import wasserstein2_grid

        truth = np.zeros((5, 5))
        truth[2, 2] = 1.0
        near = np.zeros((5, 5))
        near[2, 3] = 1.0
        far = np.zeros((5, 5))
        far[4, 4] = 1.0
        t = GridDistribution(unit_grid5, truth)
        n = GridDistribution(unit_grid5, near)
        f = GridDistribution(unit_grid5, far)
        assert total_variation(t, n) == pytest.approx(total_variation(t, f))
        assert wasserstein2_grid(t, n) < wasserstein2_grid(t, f)


class TestChiSquare:
    def test_zero_for_exact_match(self):
        counts = np.array([10.0, 20.0, 30.0])
        assert chi_square_statistic(counts, counts) == 0.0

    def test_positive_for_mismatch(self):
        assert chi_square_statistic(np.array([10.0, 20.0]), np.array([15.0, 15.0])) > 0

    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError):
            chi_square_statistic(np.array([-1.0]), np.array([1.0]))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            chi_square_statistic(np.array([1.0, 2.0]), np.array([1.0]))

    @given(st.integers(min_value=2, max_value=20), strategies.seeds())
    @settings(max_examples=30, deadline=None)
    def test_statistic_reasonable_for_true_model(self, k, seed):
        """Property: sampling from the expected distribution keeps chi-square moderate."""
        rng = np.random.default_rng(seed)
        probs = rng.dirichlet(np.ones(k) * 5)
        n = 5000
        observed = np.bincount(rng.choice(k, size=n, p=probs), minlength=k)
        statistic = chi_square_statistic(observed, probs * n)
        assert statistic < 10 * k  # extremely generous bound, catches gross errors only
