"""Tests for repro.metrics.wasserstein — 1-D closed forms and the exact 2-D LP."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

import strategies
from repro.core.domain import GridDistribution, GridSpec
from repro.metrics.wasserstein import (
    wasserstein2_auto,
    wasserstein2_grid,
    wasserstein_1d,
    wasserstein_1d_general,
    wasserstein_exact,
)


class TestWasserstein1D:
    def test_identical_distributions(self):
        weights = np.array([0.2, 0.5, 0.3])
        assert wasserstein_1d(weights, weights) == pytest.approx(0.0, abs=1e-12)

    def test_point_masses_distance(self):
        a = np.array([1.0, 0.0, 0.0])
        b = np.array([0.0, 0.0, 1.0])
        assert wasserstein_1d(a, b, p=1.0) == pytest.approx(2.0)
        assert wasserstein_1d(a, b, p=2.0) == pytest.approx(2.0)

    def test_custom_positions(self):
        a = np.array([1.0, 0.0])
        b = np.array([0.0, 1.0])
        assert wasserstein_1d(a, b, positions=np.array([0.0, 5.0]), p=1.0) == pytest.approx(5.0)

    def test_shift_by_one_bin(self):
        a = np.array([0.5, 0.5, 0.0])
        b = np.array([0.0, 0.5, 0.5])
        assert wasserstein_1d(a, b, p=1.0) == pytest.approx(1.0)

    def test_symmetry(self):
        rng = np.random.default_rng(0)
        a = rng.dirichlet(np.ones(10))
        b = rng.dirichlet(np.ones(10))
        assert wasserstein_1d(a, b) == pytest.approx(wasserstein_1d(b, a))

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            wasserstein_1d(np.array([1.0]), np.array([0.5, 0.5]))

    def test_w2_at_least_w1(self):
        """Jensen: W_2 >= W_1 on the same pair."""
        rng = np.random.default_rng(1)
        a = rng.dirichlet(np.ones(12))
        b = rng.dirichlet(np.ones(12))
        assert wasserstein_1d(a, b, p=2.0) >= wasserstein_1d(a, b, p=1.0) - 1e-12

    @given(st.integers(min_value=2, max_value=15), strategies.seeds())
    @settings(max_examples=40, deadline=None)
    def test_metric_properties(self, size, seed):
        """Property: non-negativity, identity and symmetry on random distributions."""
        rng = np.random.default_rng(seed)
        a = rng.dirichlet(np.ones(size))
        b = rng.dirichlet(np.ones(size))
        d_ab = wasserstein_1d(a, b)
        assert d_ab >= 0
        assert wasserstein_1d(a, a) == pytest.approx(0.0, abs=1e-9)
        assert d_ab == pytest.approx(wasserstein_1d(b, a), abs=1e-9)


class TestWasserstein1DGeneral:
    def test_different_supports(self):
        d = wasserstein_1d_general(
            np.array([0.0]), np.array([1.0]), np.array([3.0]), np.array([1.0]), p=1.0
        )
        assert d == pytest.approx(3.0)

    def test_matches_shared_support_version(self):
        rng = np.random.default_rng(2)
        positions = np.sort(rng.random(8))
        a = rng.dirichlet(np.ones(8))
        b = rng.dirichlet(np.ones(8))
        general = wasserstein_1d_general(positions, a, positions, b, p=1.0)
        shared = wasserstein_1d(a, b, positions=positions, p=1.0)
        assert general == pytest.approx(shared, abs=1e-9)


class TestWassersteinExact:
    def test_identical_distributions(self):
        weights = np.array([0.3, 0.7])
        cost = np.array([[0.0, 1.0], [1.0, 0.0]])
        assert wasserstein_exact(weights, weights, cost) == pytest.approx(0.0, abs=1e-9)

    def test_transport_cost_simple(self):
        a = np.array([1.0, 0.0])
        b = np.array([0.0, 1.0])
        cost = np.array([[0.0, 3.0], [3.0, 0.0]])
        assert wasserstein_exact(a, b, cost) == pytest.approx(3.0)

    def test_partial_transport(self):
        a = np.array([0.5, 0.5])
        b = np.array([1.0, 0.0])
        cost = np.array([[0.0, 1.0], [1.0, 0.0]])
        assert wasserstein_exact(a, b, cost) == pytest.approx(0.5)

    def test_wrong_cost_shape_rejected(self):
        with pytest.raises(ValueError):
            wasserstein_exact(np.array([1.0]), np.array([0.5, 0.5]), np.zeros((2, 2)))

    def test_matches_1d_closed_form(self):
        """On a line, the LP solution equals the quantile-coupling closed form."""
        rng = np.random.default_rng(3)
        positions = np.arange(6, dtype=float)
        a = rng.dirichlet(np.ones(6))
        b = rng.dirichlet(np.ones(6))
        cost = np.abs(positions[:, None] - positions[None, :])
        lp = wasserstein_exact(a, b, cost)
        closed = wasserstein_1d(a, b, positions=positions, p=1.0)
        assert lp == pytest.approx(closed, abs=1e-8)


class TestWasserstein2Grid:
    def test_identical_grids(self, clustered_distribution):
        assert wasserstein2_grid(clustered_distribution, clustered_distribution) == pytest.approx(
            0.0, abs=1e-6
        )

    def test_corner_to_corner(self, unit_grid5):
        a = np.zeros((5, 5))
        a[0, 0] = 1.0
        b = np.zeros((5, 5))
        b[4, 4] = 1.0
        dist_a = GridDistribution(unit_grid5, a)
        dist_b = GridDistribution(unit_grid5, b)
        expected = np.hypot(0.8, 0.8)  # centre-to-centre distance
        assert wasserstein2_grid(dist_a, dist_b) == pytest.approx(expected, rel=1e-6)

    def test_symmetry(self, clustered_distribution, uniform_distribution):
        ab = wasserstein2_grid(clustered_distribution, uniform_distribution)
        ba = wasserstein2_grid(uniform_distribution, clustered_distribution)
        assert ab == pytest.approx(ba, rel=1e-6)

    def test_triangle_inequality(self, unit_grid5, rng):
        dists = [
            GridDistribution(unit_grid5, rng.dirichlet(np.ones(25)).reshape(5, 5))
            for _ in range(3)
        ]
        d01 = wasserstein2_grid(dists[0], dists[1])
        d12 = wasserstein2_grid(dists[1], dists[2])
        d02 = wasserstein2_grid(dists[0], dists[2])
        assert d02 <= d01 + d12 + 1e-9

    def test_w1_cost(self, clustered_distribution, uniform_distribution):
        w1 = wasserstein2_grid(clustered_distribution, uniform_distribution, p=1.0)
        w2 = wasserstein2_grid(clustered_distribution, uniform_distribution, p=2.0)
        assert w1 <= w2 + 1e-9

    def test_incompatible_grids_rejected(self, clustered_distribution):
        other = GridDistribution.uniform(GridSpec.unit(4))
        with pytest.raises(ValueError):
            wasserstein2_grid(clustered_distribution, other)

    def test_bounded_by_diameter(self, clustered_distribution, uniform_distribution):
        """W2 on the unit square can never exceed its diameter sqrt(2)."""
        assert wasserstein2_grid(clustered_distribution, uniform_distribution) <= np.sqrt(2)


class TestWasserstein2Auto:
    def test_small_grid_matches_exact(self, clustered_distribution, uniform_distribution):
        auto = wasserstein2_auto(clustered_distribution, uniform_distribution)
        exact = wasserstein2_grid(clustered_distribution, uniform_distribution)
        assert auto == pytest.approx(exact, rel=1e-9)

    def test_large_grid_uses_sinkhorn(self, rng):
        grid = GridSpec.unit(15)
        a = GridDistribution(grid, rng.dirichlet(np.ones(225)).reshape(15, 15))
        b = GridDistribution(grid, rng.dirichlet(np.ones(225)).reshape(15, 15))
        value = wasserstein2_auto(a, b, exact_cell_limit=100)
        assert value > 0

    def test_sinkhorn_close_to_exact_on_boundary_size(self, rng):
        """Where both solvers are feasible, the Sinkhorn value tracks the exact one."""
        grid = GridSpec.unit(6)
        a = GridDistribution(grid, rng.dirichlet(np.ones(36) * 2).reshape(6, 6))
        b = GridDistribution(grid, rng.dirichlet(np.ones(36) * 2).reshape(6, 6))
        exact = wasserstein2_grid(a, b)
        approx = wasserstein2_auto(a, b, exact_cell_limit=1, sinkhorn_reg=0.005)
        assert approx == pytest.approx(exact, rel=0.25)
