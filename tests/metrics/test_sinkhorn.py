"""Tests for repro.metrics.sinkhorn — entropic optimal transport."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.domain import GridDistribution, GridSpec
from repro.metrics.sinkhorn import sinkhorn_distance, sinkhorn_plan, sinkhorn_wasserstein
from repro.metrics.wasserstein import wasserstein2_grid, wasserstein_exact


@pytest.fixture
def simple_cost() -> np.ndarray:
    positions = np.arange(4, dtype=float)
    return np.abs(positions[:, None] - positions[None, :])


class TestSinkhornPlan:
    def test_plan_marginals(self, simple_cost):
        a = np.array([0.4, 0.3, 0.2, 0.1])
        b = np.array([0.1, 0.2, 0.3, 0.4])
        plan, result = sinkhorn_plan(a, b, simple_cost, reg=0.05)
        np.testing.assert_allclose(plan.sum(axis=1), a, atol=1e-5)
        np.testing.assert_allclose(plan.sum(axis=0), b, atol=1e-5)
        assert result.cost >= 0

    def test_identical_distributions_near_zero_cost(self, simple_cost):
        a = np.array([0.25, 0.25, 0.25, 0.25])
        cost = sinkhorn_distance(a, a, simple_cost, reg=0.01)
        assert cost == pytest.approx(0.0, abs=0.02)

    def test_zero_mass_bins_handled(self, simple_cost):
        a = np.array([0.5, 0.0, 0.5, 0.0])
        b = np.array([0.0, 0.5, 0.0, 0.5])
        plan, _ = sinkhorn_plan(a, b, simple_cost, reg=0.05)
        np.testing.assert_allclose(plan.sum(axis=1), a, atol=1e-3)
        np.testing.assert_allclose(plan.sum(axis=0), b, atol=1e-3)
        # Rows with zero mass stay exactly empty.
        assert plan[1].sum() == 0.0 and plan[3].sum() == 0.0

    def test_cost_approaches_exact_as_reg_shrinks(self, simple_cost):
        rng = np.random.default_rng(0)
        a = rng.dirichlet(np.ones(4))
        b = rng.dirichlet(np.ones(4))
        exact = wasserstein_exact(a, b, simple_cost)
        loose = sinkhorn_distance(a, b, simple_cost, reg=0.5)
        tight = sinkhorn_distance(a, b, simple_cost, reg=0.01)
        assert abs(tight - exact) <= abs(loose - exact) + 1e-9
        assert tight == pytest.approx(exact, abs=0.05)

    def test_wrong_cost_shape_rejected(self):
        with pytest.raises(ValueError):
            sinkhorn_plan(np.array([1.0]), np.array([0.5, 0.5]), np.zeros((2, 2)))

    def test_invalid_reg_rejected(self, simple_cost):
        a = np.array([0.25, 0.25, 0.25, 0.25])
        with pytest.raises(ValueError):
            sinkhorn_plan(a, a, simple_cost, reg=0.0)


class TestSinkhornWasserstein:
    def test_matches_exact_on_small_grid(self, rng):
        grid = GridSpec.unit(4)
        a = GridDistribution(grid, rng.dirichlet(np.ones(16) * 3).reshape(4, 4))
        b = GridDistribution(grid, rng.dirichlet(np.ones(16) * 3).reshape(4, 4))
        exact = wasserstein2_grid(a, b)
        approx = sinkhorn_wasserstein(a, b, reg=0.005)
        assert approx == pytest.approx(exact, rel=0.2, abs=0.02)

    def test_symmetric(self, clustered_distribution, uniform_distribution):
        ab = sinkhorn_wasserstein(clustered_distribution, uniform_distribution)
        ba = sinkhorn_wasserstein(uniform_distribution, clustered_distribution)
        assert ab == pytest.approx(ba, rel=1e-3)

    def test_corner_to_corner_distance(self, unit_grid5):
        a = np.zeros((5, 5))
        a[0, 0] = 1.0
        b = np.zeros((5, 5))
        b[4, 4] = 1.0
        value = sinkhorn_wasserstein(
            GridDistribution(unit_grid5, a), GridDistribution(unit_grid5, b), reg=0.01
        )
        assert value == pytest.approx(np.hypot(0.8, 0.8), rel=0.05)

    def test_incompatible_grids_rejected(self, clustered_distribution):
        other = GridDistribution.uniform(GridSpec.unit(4))
        with pytest.raises(ValueError):
            sinkhorn_wasserstein(clustered_distribution, other)

    def test_monotone_in_separation(self, unit_grid5):
        """Moving the target mass farther increases the Sinkhorn distance."""
        source = np.zeros((5, 5))
        source[0, 0] = 1.0
        near = np.zeros((5, 5))
        near[0, 1] = 1.0
        far = np.zeros((5, 5))
        far[0, 4] = 1.0
        src = GridDistribution(unit_grid5, source)
        assert sinkhorn_wasserstein(src, GridDistribution(unit_grid5, near)) < sinkhorn_wasserstein(
            src, GridDistribution(unit_grid5, far)
        )
