"""Tests for repro.metrics.privacy_audit — empirical LDP auditing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.dam import DiscreteDAM
from repro.core.domain import GridDistribution, GridSpec
from repro.core.estimator import TransitionMatrixMechanism
from repro.core.huem import DiscreteHUEM
from repro.metrics.privacy_audit import (
    audit_mechanism,
    audit_pairwise_privacy,
    worst_case_epsilon,
)


class LeakyMechanism(TransitionMatrixMechanism):
    """A deliberately broken 'LDP' mechanism that reports the truth with high probability.

    It claims a small epsilon but behaves like a much larger one; the audit must flag it.
    """

    name = "Leaky"

    def __init__(self, grid: GridSpec, claimed_epsilon: float = 0.5) -> None:
        super().__init__(grid, claimed_epsilon)
        n = grid.n_cells
        matrix = np.full((n, n), 0.02 / (n - 1))
        np.fill_diagonal(matrix, 0.98)
        self._set_transition(matrix)

    def estimate(self, noisy_counts, n_users):  # pragma: no cover - not needed
        return GridDistribution.uniform(self.grid)


@pytest.fixture(scope="module")
def grid4() -> GridSpec:
    return GridSpec.unit(4)


class TestPairwiseAudit:
    def test_dam_passes_audit(self, grid4):
        mech = DiscreteDAM(grid4, 2.0, b_hat=1)
        result = audit_pairwise_privacy(mech, 0, grid4.n_cells - 1, n_trials=15_000, seed=0)
        assert not result.violated
        assert result.epsilon_lower_confidence <= result.epsilon_declared + 1e-9

    def test_huem_passes_audit(self, grid4):
        mech = DiscreteHUEM(grid4, 2.0, b_hat=1)
        result = audit_pairwise_privacy(mech, 0, 5, n_trials=15_000, seed=1)
        assert not result.violated

    def test_measured_loss_close_to_declared_for_adjacent_disks(self, grid4):
        """For far-apart cells the realised loss approaches the declared e^eps bound."""
        mech = DiscreteDAM(grid4, 1.5, b_hat=1)
        result = audit_pairwise_privacy(mech, 0, grid4.n_cells - 1, n_trials=40_000, seed=2)
        assert result.epsilon_measured == pytest.approx(1.5, abs=0.4)

    def test_leaky_mechanism_flagged(self, grid4):
        mech = LeakyMechanism(grid4, claimed_epsilon=0.5)
        result = audit_pairwise_privacy(mech, 0, 15, n_trials=20_000, seed=3)
        assert result.violated
        assert result.epsilon_measured > 2.0

    def test_result_fields(self, grid4):
        mech = DiscreteDAM(grid4, 2.0, b_hat=1)
        result = audit_pairwise_privacy(mech, 1, 2, n_trials=2_000, seed=4)
        assert result.n_trials == 2_000
        assert result.epsilon_declared == 2.0
        assert result.epsilon_lower_confidence <= result.epsilon_measured

    def test_invalid_trials_rejected(self, grid4):
        with pytest.raises(ValueError):
            audit_pairwise_privacy(DiscreteDAM(grid4, 2.0, b_hat=1), 0, 1, n_trials=0)


class TestMechanismAudit:
    def test_audits_multiple_pairs(self, grid4):
        mech = DiscreteDAM(grid4, 2.5, b_hat=1)
        results = audit_mechanism(mech, n_pairs=3, n_trials=5_000, seed=0)
        assert len(results) == 3
        assert not any(result.violated for result in results)

    def test_worst_case_epsilon(self, grid4):
        mech = DiscreteDAM(grid4, 2.5, b_hat=1)
        results = audit_mechanism(mech, n_pairs=3, n_trials=5_000, seed=1)
        assert worst_case_epsilon(results) == max(r.epsilon_measured for r in results)

    def test_worst_case_requires_results(self):
        with pytest.raises(ValueError):
            worst_case_epsilon([])
