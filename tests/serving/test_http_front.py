"""The HTTP front: e2e bit-identity over the wire, error paths, drain, hammer.

The acceptance bar for the network front is the same one every other serving
layer clears: a :class:`~repro.queries.engine.QueryLog` replayed over HTTP must
produce answers **equal to the serial engine's** — JSON's shortest-round-trip
float repr makes that a bit-for-bit comparison, not an approximate one.  On top
sit the contract tests for the failure surface: malformed JSON and unknown
kinds are 400s, a full admission queue is a 429 with ``Retry-After``, a dead
publisher (torn snapshot) is a 503, and a hammering publisher never lets a
response mix two epochs.
"""

from __future__ import annotations

import http.client
import json
import threading
import time

import numpy as np
import pytest

from repro.core.domain import GridDistribution, GridSpec
from repro.queries.engine import TrajectoryQueryEngine, WorkloadReplay
from repro.queries.engine import QueryLog
from repro.serving import (
    HttpQueryClient,
    HttpServingFront,
    HttpStatusError,
    QueryKind,
    QueryRequest,
    ServingServer,
    TrajectorySnapshotWriter,
    requests_from_log,
)
from repro.serving.shm import _GENERATION

GRID = GridSpec.unit(8)


def make_estimate(seed: int) -> GridDistribution:
    rng = np.random.default_rng(seed)
    return GridDistribution.from_counts(GRID, rng.random((GRID.d, GRID.d)) + 0.1)


def make_trajectory_engine(seed: int, n: int = 30) -> TrajectoryQueryEngine:
    rng = np.random.default_rng(seed)
    trajectories = [rng.random((int(k), 2)) for k in rng.integers(2, 9, n)]
    return TrajectoryQueryEngine(trajectories, GRID)


def raw_post(host: str, port: int, path: str, body: str):
    """One raw request, returning ``(status, parsed_body, headers)``."""
    connection = http.client.HTTPConnection(host, port, timeout=30.0)
    try:
        connection.request("POST", path, body=body)
        response = connection.getresponse()
        payload = response.read()
        return response.status, json.loads(payload), dict(response.getheaders())
    finally:
        connection.close()


class TestEndToEndReplay:
    def test_query_log_over_http_equals_serial_engine(self):
        """The tentpole criterion: a full mixed log, every kind, bit-identical."""
        engine = make_trajectory_engine(seed=0)
        log = QueryLog.random(
            GRID.domain,
            n_range=40,
            n_density=25,
            n_top_k=4,
            n_quantiles=3,
            n_marginals=2,
            n_od_top_k=3,
            n_transition_top_k=3,
            n_length_histograms=2,
            seed=1,
        )
        _, serial = WorkloadReplay(engine).replay(log)

        with ServingServer(GRID, workers=2) as server:
            server.publish(engine.estimate, epoch=7)
            server.start()
            with TrajectorySnapshotWriter(
                GRID, max_trajectories=64, max_pairs=4096
            ) as trajectory_writer:
                trajectory_writer.publish(engine, epoch=7)
                with HttpServingFront(
                    server, trajectory_spec=trajectory_writer.spec
                ) as front:
                    client = HttpQueryClient(front.host, front.port)
                    responses: dict[str, list] = {}
                    for request in requests_from_log(log):
                        response = client.query(request)
                        assert response.kind == request.kind
                        assert response.epoch == 7
                        responses.setdefault(request.kind.value, []).append(
                            response.result
                        )
                    client.close()

        # Vectorised kinds: requests_from_log splits per row, so the
        # concatenated results must equal the serial batch answers bitwise.
        served_range = [v for result in responses["range_mass"] for v in result]
        assert served_range == serial["range_mass"].tolist()
        served_density = [v for result in responses["point_density"] for v in result]
        assert served_density == serial["point_density"].tolist()
        # Structured kinds, field by field.
        for result, cells in zip(responses["top_k"], serial["top_k"]):
            assert result["flat_indices"] == cells.flat_indices.tolist()
            assert result["masses"] == cells.masses.tolist()
            assert result["centers"] == cells.centers.tolist()
        for result, contour in zip(responses["quantiles"], serial["quantiles"]):
            assert result[0]["level"] == contour.level
            assert result[0]["threshold"] == contour.threshold
            assert result[0]["covered_mass"] == contour.covered_mass
            assert result[0]["n_cells"] == contour.n_cells
            assert result[0]["mask"] == contour.mask.astype(int).tolist()
        for result, (x_marginal, y_marginal) in zip(
            responses["marginals"], serial["marginals"]
        ):
            assert result["x"] == x_marginal.tolist()
            assert result["y"] == y_marginal.tolist()
        # Trajectory kinds.
        for result, top in zip(responses["od_top_k"], serial["od_top_k"]):
            assert result["from_cells"] == top.from_cells.tolist()
            assert result["to_cells"] == top.to_cells.tolist()
            assert result["counts"] == top.counts.tolist()
            assert result["fractions"] == top.fractions.tolist()
        for result, top in zip(
            responses["transition_top_k"], serial["transition_top_k"]
        ):
            assert result["counts"] == top.counts.tolist()
            assert result["fractions"] == top.fractions.tolist()
        for result, (counts, edges) in zip(
            responses["length_histogram"], serial["length_histogram"]
        ):
            assert result["counts"] == counts.tolist()
            assert result["edges"] == edges.tolist()

    def test_concurrent_clients_coalesce_and_answer_identically(self):
        """Parallel clients share worker dispatches; every answer stays serial-exact."""
        estimate = make_estimate(seed=2)
        rows = QueryLog.random(GRID.domain, n_range=64, seed=3).range_queries
        from repro.queries.engine import QueryEngine

        expected = QueryEngine(estimate).range_mass(rows)
        failures: list = []

        with ServingServer(GRID, workers=2) as server:
            server.publish(estimate, epoch=0)
            server.start()
            with HttpServingFront(server) as front:

                def worker(indices) -> None:
                    client = HttpQueryClient(front.host, front.port)
                    try:
                        for i in indices:
                            response = client.query(
                                QueryRequest(
                                    QueryKind.RANGE_MASS,
                                    {"queries": [rows[i].tolist()]},
                                )
                            )
                            if response.result != [expected[i]]:
                                failures.append((i, response.result))
                    except Exception as exc:  # pragma: no cover - surfaced below
                        failures.append(exc)
                    finally:
                        client.close()

                threads = [
                    threading.Thread(target=worker, args=(range(t, 64, 8),))
                    for t in range(8)
                ]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join()
                metrics = HttpQueryClient(front.host, front.port).metrics()
        assert not failures
        assert metrics["served_requests"] == 64
        assert metrics["per_kind"]["range_mass"]["count"] == 64


class TestErrorPaths:
    @pytest.fixture()
    def front(self):
        with ServingServer(GRID, workers=1) as server:
            server.publish(make_estimate(seed=4), epoch=0)
            server.start()
            with HttpServingFront(server) as running:
                yield running

    def test_malformed_json_is_400(self, front):
        status, body, _ = raw_post(front.host, front.port, "/query", "{not json")
        assert status == 400
        assert "not valid JSON" in body["error"]

    def test_unknown_kind_is_400(self, front):
        message = json.dumps(
            {"kind": "florble", "payload": {}, "schema_version": 1}
        )
        status, body, _ = raw_post(front.host, front.port, "/query", message)
        assert status == 400
        assert "unknown query kind" in body["error"]

    def test_unsupported_schema_version_is_400(self, front):
        message = json.dumps({"kind": "marginals", "payload": {}, "schema_version": 99})
        status, body, _ = raw_post(front.host, front.port, "/query", message)
        assert status == 400
        assert "schema_version" in body["error"]

    def test_engine_rejections_are_400(self, front):
        client = HttpQueryClient(front.host, front.port)
        with pytest.raises(HttpStatusError) as error:
            client.query(QueryRequest(QueryKind.TOP_K, {"k": 10**9}))
        assert error.value.status == 400
        assert "k must lie in" in error.value.message
        client.close()

    def test_trajectory_kind_without_segment_is_400(self, front):
        client = HttpQueryClient(front.host, front.port)
        with pytest.raises(HttpStatusError) as error:
            client.query(QueryRequest(QueryKind.OD_TOP_K, {"k": 3}))
        assert error.value.status == 400
        assert "no trajectory snapshot attached" in error.value.message
        client.close()

    def test_unknown_route_404_wrong_method_405(self, front):
        status, _, _ = raw_post(front.host, front.port, "/nope", "")
        assert status == 404
        status, _, _ = raw_post(front.host, front.port, "/metrics", "")
        assert status == 405

    def test_queue_full_is_429_with_retry_after(self):
        """Admission bound: with the dispatcher wedged, the N+1th request bounces."""
        with ServingServer(GRID, workers=1, read_timeout=30.0) as server:
            # No publish yet: the first admitted read blocks in the seqlock
            # wait, wedging the single serving thread deterministically.
            server.start()
            with HttpServingFront(server, max_queue=1, retry_after=2.5) as front:
                probe = HttpQueryClient(front.host, front.port)
                request = QueryRequest(
                    QueryKind.POINT_DENSITY, {"points": [[0.5, 0.5]]}
                ).to_json()

                def fire() -> http.client.HTTPConnection:
                    connection = http.client.HTTPConnection(
                        front.host, front.port, timeout=60.0
                    )
                    connection.request("POST", "/query", body=request)
                    return connection

                # First request: admitted, picked up by the dispatcher, blocked.
                blocked = fire()
                deadline = time.monotonic() + 10.0
                while probe.metrics()["queue_depth"] != 0:
                    assert time.monotonic() < deadline
                    time.sleep(0.01)
                # Second request: admitted, sits in the (size-1) queue.
                queued = fire()
                while probe.metrics()["queue_depth"] != 1:
                    assert time.monotonic() < deadline
                    time.sleep(0.01)
                # Third request: the queue is full — sheds with 429.
                with pytest.raises(HttpStatusError) as error:
                    probe.query(QueryRequest(QueryKind.MARGINALS))
                assert error.value.status == 429
                assert error.value.retry_after == 2.5
                assert probe.metrics()["rejected_requests"] == 1
                # Publishing unwedges the pipeline; both admitted requests finish.
                server.publish(make_estimate(seed=5), epoch=0)
                for connection in (blocked, queued):
                    response = connection.getresponse()
                    assert response.status == 200
                    response.read()
                    connection.close()
                probe.close()

    def test_dead_writer_torn_snapshot_is_503(self):
        """A publisher dead mid-publish surfaces as 503 + Retry-After, not a hang."""
        with ServingServer(GRID, workers=1, torn_timeout=0.2) as server:
            server.publish(make_estimate(seed=6), epoch=0)
            server.start()
            with HttpServingFront(server, retry_after=1.5) as front:
                client = HttpQueryClient(front.host, front.port)
                server.writer._header[_GENERATION] += 1  # die mid-publish
                # Front-end read path (non-range kinds).
                with pytest.raises(HttpStatusError) as error:
                    client.query(QueryRequest(QueryKind.MARGINALS))
                assert error.value.status == 503
                assert "TornSnapshotError" in error.value.message
                assert error.value.retry_after == 1.5
                # Worker-pool path: the torn read fails inside the worker task.
                with pytest.raises(HttpStatusError) as error:
                    client.query(
                        QueryRequest(
                            QueryKind.RANGE_MASS,
                            {"queries": [[0.1, 0.6, 0.2, 0.9]]},
                        )
                    )
                assert error.value.status == 503
                assert "TornSnapshotError" in error.value.message
                client.close()


class TestLifecycle:
    def test_graceful_drain_then_connection_refused(self):
        with ServingServer(GRID, workers=1) as server:
            server.publish(make_estimate(seed=7), epoch=0)
            server.start()
            front = HttpServingFront(server).start()
            client = HttpQueryClient(front.host, front.port)
            response = client.query(QueryRequest(QueryKind.MARGINALS))
            assert response.epoch == 0
            front.stop()
            with pytest.raises(OSError):
                http.client.HTTPConnection(
                    front.host, front.port, timeout=2.0
                ).request("GET", "/healthz")
            client.close()
            front.stop()  # idempotent

    def test_start_is_idempotent_and_metrics_fresh(self):
        with ServingServer(GRID, workers=1) as server:
            server.publish(make_estimate(seed=8), epoch=3)
            server.start()
            with HttpServingFront(server) as front:
                assert front.start() is front
                metrics = HttpQueryClient(front.host, front.port).metrics()
                assert metrics["generation"] == 2
                assert metrics["epoch"] == 3
                assert metrics["served_requests"] == 0
                assert metrics["per_kind"] == {}
                assert metrics["pending_rows"] == 0


class TestMidReplayPublishes:
    def test_no_torn_reads_while_publisher_hammers(self):
        """Every response under a hammering publisher matches exactly one epoch."""
        estimates = {0: make_estimate(seed=10), 1: make_estimate(seed=11)}
        probe_rows = [[0.1, 0.7, 0.2, 0.8]]
        from repro.queries.engine import QueryEngine

        expected_range = {
            parity: QueryEngine(estimate).range_mass(np.array(probe_rows)).tolist()
            for parity, estimate in estimates.items()
        }
        expected_marginals = {
            parity: QueryEngine(estimate).axis_marginals()[0].tolist()
            for parity, estimate in estimates.items()
        }

        with ServingServer(GRID, workers=2) as server:
            server.publish(estimates[0], epoch=0)
            server.start()
            with HttpServingFront(server) as front:
                done = threading.Event()

                def hammer() -> None:
                    for epoch in range(1, 300):
                        server.publish(estimates[epoch % 2], epoch=epoch)
                    done.set()

                publisher = threading.Thread(target=hammer)
                publisher.start()
                client = HttpQueryClient(front.host, front.port)
                observations = 0
                try:
                    while not done.is_set() or observations == 0:
                        response = client.query(
                            QueryRequest(QueryKind.RANGE_MASS, {"queries": probe_rows})
                        )
                        assert response.result == expected_range[response.epoch % 2]
                        response = client.query(QueryRequest(QueryKind.MARGINALS))
                        assert (
                            response.result["x"]
                            == expected_marginals[response.epoch % 2]
                        )
                        observations += 1
                finally:
                    publisher.join()
                    client.close()
                assert observations > 0
