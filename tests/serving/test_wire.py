"""Wire-schema tests: the closed kind enum, versioning, and log expansion.

The load-bearing property is that the kind vocabulary is defined ONCE: the
enum's values are exactly the kind strings ``WorkloadReplay`` reports and
answers under, so a producer/consumer kind mismatch (the PR 8
``"density"``/``"point_density"`` bug shape) cannot type-check against the
schema, and floats round-trip the JSON boundary bit-identically.
"""

import numpy as np
import pytest

from repro.core.domain import GridSpec, SpatialDomain
from repro.queries import QueryEngine, QueryLog, TrajectoryQueryEngine, WorkloadReplay
from repro.serving.wire import (
    POINT_KINDS,
    SCHEMA_VERSION,
    TRAJECTORY_KINDS,
    QueryKind,
    QueryRequest,
    QueryResponse,
    WireFormatError,
    requests_from_log,
)


class TestQueryKind:
    def test_closed_set(self):
        assert {kind.value for kind in QueryKind} == {
            "range_mass",
            "point_density",
            "top_k",
            "quantiles",
            "marginals",
            "od_top_k",
            "transition_top_k",
            "length_histogram",
        }

    def test_parse_accepts_every_value(self):
        for kind in QueryKind:
            assert QueryKind.parse(kind.value) is kind

    def test_parse_rejects_unknown(self):
        with pytest.raises(WireFormatError, match="unknown query kind 'density'"):
            QueryKind.parse("density")

    def test_point_and_trajectory_kinds_partition_the_enum(self):
        assert POINT_KINDS | TRAJECTORY_KINDS == frozenset(QueryKind)
        assert POINT_KINDS & TRAJECTORY_KINDS == frozenset()

    def test_replay_report_keys_are_wire_kinds(self):
        """Report stats and answers key on enum values — the mismatch-proofing."""
        rng = np.random.default_rng(0)
        points = rng.random((500, 2))
        grid = GridSpec.unit(6)
        trajectories = [rng.random((5, 2)) for _ in range(20)]
        engine = TrajectoryQueryEngine(trajectories, grid)
        log = QueryLog.random(
            SpatialDomain.unit(),
            n_range=8,
            n_density=4,
            n_top_k=2,
            n_quantiles=2,
            n_marginals=1,
            n_od_top_k=2,
            n_transition_top_k=2,
            n_length_histograms=2,
            seed=1,
        )
        report, answers = WorkloadReplay(engine).replay(log)
        valid = {kind.value for kind in QueryKind}
        assert set(report.per_kind) <= valid
        assert set(answers) <= valid
        assert set(report.per_kind) == set(answers)
        del points


class TestQueryRequest:
    def test_json_round_trip(self):
        request = QueryRequest(QueryKind.RANGE_MASS, {"queries": [[0.1, 0.4, 0.2, 0.9]]})
        parsed = QueryRequest.from_json(request.to_json())
        assert parsed == request
        assert parsed.schema_version == SCHEMA_VERSION

    def test_kind_validated_at_construction(self):
        with pytest.raises(WireFormatError, match="unknown query kind"):
            QueryRequest("density", {"points": [[0.5, 0.5]]})

    def test_string_kind_coerced_to_enum(self):
        request = QueryRequest("top_k", {"k": 3})
        assert request.kind is QueryKind.TOP_K

    def test_missing_required_field_rejected(self):
        with pytest.raises(WireFormatError, match="requires field 'k'"):
            QueryRequest(QueryKind.TOP_K, {})

    def test_non_dict_payload_rejected(self):
        with pytest.raises(WireFormatError, match="payload must be a JSON object"):
            QueryRequest(QueryKind.MARGINALS, [1, 2])

    def test_invalid_json_rejected(self):
        with pytest.raises(WireFormatError, match="not valid JSON"):
            QueryRequest.from_json("{nope")

    def test_non_object_json_rejected(self):
        with pytest.raises(WireFormatError, match="must be a JSON object"):
            QueryRequest.from_json("[1, 2, 3]")

    def test_wrong_schema_version_rejected(self):
        text = QueryRequest(QueryKind.MARGINALS).to_json().replace(
            f'"schema_version": {SCHEMA_VERSION}', '"schema_version": 999'
        )
        with pytest.raises(WireFormatError, match="schema_version 999"):
            QueryRequest.from_json(text)

    def test_missing_schema_version_rejected(self):
        with pytest.raises(WireFormatError, match="schema_version None"):
            QueryRequest.from_json('{"kind": "marginals", "payload": {}}')


class TestQueryResponse:
    def test_json_round_trip_is_bit_identical(self):
        """Shortest-round-trip float repr: answers survive the wire exactly."""
        rng = np.random.default_rng(2)
        values = [float(v) for v in rng.random(64)]
        response = QueryResponse(
            QueryKind.RANGE_MASS, values, generation=4, epoch=7
        )
        parsed = QueryResponse.from_json(response.to_json())
        assert parsed.result == values
        assert np.array(parsed.result).tobytes() == np.array(values).tobytes()
        assert parsed.generation == 4 and parsed.epoch == 7

    def test_wrong_schema_version_rejected(self):
        text = QueryResponse(QueryKind.TOP_K, {"cells": []}).to_json().replace(
            f'"schema_version": {SCHEMA_VERSION}', '"schema_version": 0'
        )
        with pytest.raises(WireFormatError, match="schema_version 0"):
            QueryResponse.from_json(text)


class TestRequestsFromLog:
    def test_one_request_per_logged_operation(self):
        log = QueryLog.random(
            SpatialDomain.unit(),
            n_range=5,
            n_density=3,
            n_top_k=2,
            n_quantiles=2,
            n_marginals=1,
            n_od_top_k=2,
            n_transition_top_k=1,
            n_length_histograms=1,
            seed=3,
        )
        requests = list(requests_from_log(log))
        assert len(requests) == log.size
        by_kind: dict = {}
        for request in requests:
            by_kind[request.kind] = by_kind.get(request.kind, 0) + 1
        assert by_kind[QueryKind.RANGE_MASS] == 5
        assert by_kind[QueryKind.POINT_DENSITY] == 3
        assert by_kind[QueryKind.MARGINALS] == 1
        assert by_kind[QueryKind.LENGTH_HISTOGRAM] == 1

    def test_range_rows_round_trip_bit_identically(self):
        log = QueryLog.random(SpatialDomain.unit(), n_range=7, seed=4)
        requests = list(requests_from_log(log))
        rows = np.array(
            [QueryRequest.from_json(r.to_json()).payload["queries"][0] for r in requests]
        )
        assert rows.tobytes() == log.range_queries.tobytes()

    def test_expanded_answers_match_serial_replay(self):
        rng = np.random.default_rng(5)
        engine = QueryEngine(GridSpec.unit(8).distribution(rng.random((2000, 2))))
        log = QueryLog.random(SpatialDomain.unit(), n_range=9, n_density=4, seed=6)
        _, answers = WorkloadReplay(engine).replay(log)
        per_request = [
            engine.answer_batch(np.array(request.payload["queries"]))[0]
            for request in requests_from_log(log)
            if request.kind is QueryKind.RANGE_MASS
        ]
        assert np.array(per_request).tobytes() == answers["range_mass"].tobytes()
