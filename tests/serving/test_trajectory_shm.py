"""Trajectory snapshot plane: layout v2 seqlock, bit-identity, torn detection.

The trajectory surface ships as flat tables (lengths + presorted pair triples)
rather than trajectories; the load-bearing property is that a
:class:`TrajectorySnapshotReader` answers every trajectory query bit-identically
to the publisher's in-process :class:`TrajectoryQueryEngine`.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.core.domain import GridSpec
from repro.queries.engine import TrajectoryQueryEngine
from repro.serving.shm import (
    _GENERATION,
    TornSnapshotError,
    TrajectorySnapshotReader,
    TrajectorySnapshotSpec,
    TrajectorySnapshotWriter,
)


def make_engine(grid: GridSpec, seed: int, n: int = 40) -> TrajectoryQueryEngine:
    rng = np.random.default_rng(seed)
    trajectories = [rng.random((int(k), 2)) for k in rng.integers(2, 9, n)]
    return TrajectoryQueryEngine(trajectories, grid)


def surface(engine: TrajectoryQueryEngine) -> tuple:
    """A materialised sample of the full query surface for equality checks."""
    od = engine.od_top_k(5)
    transitions = engine.transition_top_k(5)
    counts, edges = engine.length_histogram(6)
    return (
        engine.range_mass(np.array([[0.1, 0.8, 0.2, 0.9]])).tolist(),
        od.from_cells.tolist(),
        od.to_cells.tolist(),
        od.counts.tolist(),
        od.fractions.tolist(),
        transitions.from_cells.tolist(),
        transitions.counts.tolist(),
        counts.tolist(),
        edges.tolist(),
    )


@pytest.fixture()
def grid():
    return GridSpec.unit(6)


def writer_for(grid, **kwargs) -> TrajectorySnapshotWriter:
    defaults = dict(max_trajectories=128, max_pairs=4096)
    defaults.update(kwargs)
    return TrajectorySnapshotWriter(grid, **defaults)


class TestFromTables:
    def test_round_trip_equals_original(self, grid):
        engine = make_engine(grid, seed=0)
        rebuilt = TrajectoryQueryEngine.from_tables(
            grid,
            engine.estimate.probabilities,
            engine.lengths,
            engine._od_pairs,
            engine._transition_pairs,
            cumulative=engine.sat.table,
        )
        assert surface(rebuilt) == surface(engine)
        assert rebuilt.n_trajectories == engine.n_trajectories
        assert (
            rebuilt.estimate.probabilities.tobytes()
            == engine.estimate.probabilities.tobytes()
        )


class TestTrajectorySnapshotWriter:
    def test_publish_advances_even_generations(self, grid):
        with writer_for(grid) as writer:
            assert writer.generation == 0
            assert writer.publish(make_engine(grid, 1), epoch=0) == 2
            assert writer.publish(make_engine(grid, 2), epoch=1) == 4

    def test_grid_mismatch_rejected(self, grid):
        with writer_for(grid) as writer:
            with pytest.raises(ValueError, match="does not match"):
                writer.publish(make_engine(GridSpec.unit(4), 3))

    def test_over_capacity_rejected(self, grid):
        engine = make_engine(grid, 4, n=40)
        with writer_for(grid, max_trajectories=10) as writer:
            with pytest.raises(ValueError, match="capacity"):
                writer.publish(engine)
        with writer_for(grid, max_pairs=3) as writer:
            with pytest.raises(ValueError, match="capacity"):
                writer.publish(engine)

    def test_invalid_capacities_rejected(self, grid):
        with pytest.raises(ValueError, match="max_trajectories"):
            TrajectorySnapshotWriter(grid, max_trajectories=0, max_pairs=8)
        with pytest.raises(ValueError, match="max_pairs"):
            TrajectorySnapshotWriter(grid, max_trajectories=8, max_pairs=0)

    def test_closed_writer_refuses_publish(self, grid):
        writer = writer_for(grid)
        writer.close()
        writer.close()  # idempotent
        with pytest.raises(RuntimeError, match="closed"):
            writer.publish(make_engine(grid, 5))


class TestTrajectorySnapshotReader:
    def test_full_surface_bit_identical_to_serial_engine(self, grid):
        engine = make_engine(grid, seed=6)
        with writer_for(grid) as writer:
            writer.publish(engine, epoch=2)
            with TrajectorySnapshotReader(writer.spec) as reader:
                served, generation, epoch = reader.read(surface)
                assert (generation, epoch) == (2, 2)
                assert served == surface(engine)

    def test_counts_shrink_with_a_smaller_publish(self, grid):
        """Live row counts come from the header, not the segment capacity."""
        small = make_engine(grid, seed=7, n=5)
        with writer_for(grid) as writer:
            writer.publish(make_engine(grid, seed=8, n=60), epoch=0)
            writer.publish(small, epoch=1)
            with TrajectorySnapshotReader(writer.spec) as reader:
                histogram, _, _ = reader.read(
                    lambda engine: engine.length_histogram(4)[0].tolist()
                )
                assert sum(histogram) == 5
                served, _, _ = reader.read(surface)
                assert served == surface(small)

    def test_geometry_validated_at_attach(self, grid):
        with writer_for(grid) as writer:
            spec = writer.spec
            wrong_d = TrajectorySnapshotSpec(
                name=spec.name, d=4, bounds=spec.bounds,
                max_trajectories=spec.max_trajectories, max_pairs=spec.max_pairs,
            )
            with pytest.raises(ValueError, match="holds d=6"):
                TrajectorySnapshotReader(wrong_d)
            too_big = TrajectorySnapshotSpec(
                name=spec.name, d=6, bounds=spec.bounds,
                max_trajectories=spec.max_trajectories, max_pairs=10**6,
            )
            with pytest.raises(ValueError, match="bytes"):
                TrajectorySnapshotReader(too_big)

    def test_wait_ready_and_closed_reader(self, grid):
        with writer_for(grid) as writer:
            reader = TrajectorySnapshotReader(writer.spec)
            assert not reader.ready
            with pytest.raises(TimeoutError, match="no snapshot published"):
                reader.wait_ready(timeout=0.05)
            writer.publish(make_engine(grid, 9))
            reader.wait_ready(timeout=5.0)
            reader.close()
            reader.close()  # idempotent
            with pytest.raises(RuntimeError, match="closed"):
                reader.read(lambda engine: None)

    def test_torn_writer_raises_fast(self, grid):
        with writer_for(grid) as writer:
            writer.publish(make_engine(grid, 10), epoch=0)
            writer._views[0][_GENERATION] += 1  # die mid-publish
            with TrajectorySnapshotReader(writer.spec) as reader:
                start = time.monotonic()
                with pytest.raises(TornSnapshotError, match="stuck at odd generation"):
                    reader.read(lambda engine: None, timeout=30.0, torn_timeout=0.15)
                assert time.monotonic() - start < 5.0

    def test_no_torn_surface_under_concurrent_writer(self, grid):
        """A hammering publisher never lets a read mix two trajectory sets."""
        engines = {0: make_engine(grid, 20, n=30), 1: make_engine(grid, 21, n=50)}
        expected = {epoch: surface(engine) for epoch, engine in engines.items()}

        with writer_for(grid) as writer:
            writer.publish(engines[0], epoch=0)
            done = threading.Event()

            def hammer() -> None:
                for epoch in range(1, 400):
                    writer.publish(engines[epoch % 2], epoch=epoch)
                done.set()

            thread = threading.Thread(target=hammer)
            thread.start()
            try:
                with TrajectorySnapshotReader(writer.spec) as reader:
                    observations = 0
                    while not done.is_set() or observations == 0:
                        served, _, epoch = reader.read(surface)
                        assert served == expected[epoch % 2]
                        observations += 1
            finally:
                thread.join()
            assert observations > 0
