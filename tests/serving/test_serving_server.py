"""ServingServer: worker-count invariance, admission, coalescing, staged bulk."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.domain import GridSpec
from repro.queries.engine import QueryEngine, QueryLog
from repro.serving import BackpressureError, ServingServer, WorkloadArena


@pytest.fixture(scope="module")
def grid():
    return GridSpec.unit(8)


@pytest.fixture(scope="module")
def estimate(grid):
    rng = np.random.default_rng(0)
    return grid.distribution(rng.random((3000, 2)))


@pytest.fixture(scope="module")
def queries(grid):
    log = QueryLog.random(grid.domain, n_range=300, seed=1)
    return log.range_queries


class TestWorkerCountInvariance:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_front_end_bit_identical_to_serial(self, grid, estimate, queries, workers):
        serial = QueryEngine(estimate).range_mass(queries)
        with ServingServer(grid, workers=workers, coalesce_rows=64) as server:
            server.publish(estimate, epoch=0)
            server.start()
            np.testing.assert_array_equal(server.range_mass(queries), serial)

    @pytest.mark.parametrize("workers", [1, 2])
    def test_staged_bit_identical_to_serial(self, grid, estimate, queries, workers):
        serial = QueryEngine(estimate).range_mass(queries)
        with ServingServer(grid, workers=workers) as server:
            server.publish(estimate, epoch=0)
            server.start()
            with WorkloadArena(queries) as arena:
                snapshots = server.serve_staged(arena, batch_rows=50)
                assert snapshots == [(2, 0)] * len(snapshots)
                np.testing.assert_array_equal(arena.answers, serial)


class TestAdmission:
    def test_backpressure_rejects_then_recovers(self, grid, estimate, queries):
        with ServingServer(grid, workers=1, max_pending_rows=250) as server:
            server.publish(estimate, epoch=0)
            server.start()
            ticket = server.submit_range_mass(queries[:200])
            assert server.pending_rows == 200
            with pytest.raises(BackpressureError, match="pending budget"):
                server.submit_range_mass(queries[200:300])
            # Collecting the outstanding ticket frees the budget.
            batch = server.collect(ticket)
            assert server.pending_rows == 0
            np.testing.assert_array_equal(
                batch.answers, QueryEngine(estimate).range_mass(queries[:200])
            )
            server.submit_range_mass(queries[200:300])

    def test_empty_batch_rejected(self, grid, estimate):
        with ServingServer(grid, workers=1) as server:
            server.publish(estimate)
            with pytest.raises(ValueError, match="empty"):
                server.submit_range_mass(np.empty((0, 4)))

    def test_unknown_ticket_rejected(self, grid):
        with ServingServer(grid, workers=1) as server:
            with pytest.raises(KeyError, match="unknown"):
                server.collect(99)

    def test_parameters_validated(self, grid):
        with pytest.raises(ValueError, match="workers"):
            ServingServer(grid, workers=0)
        with pytest.raises(ValueError, match="max_pending_rows"):
            ServingServer(grid, max_pending_rows=0)
        with pytest.raises(ValueError, match="coalesce_rows"):
            ServingServer(grid, coalesce_rows=0)


class TestCoalescing:
    def test_small_bursts_coalesce_and_large_batches_split(
        self, grid, estimate, queries
    ):
        serial = QueryEngine(estimate)
        with ServingServer(grid, workers=2, coalesce_rows=40) as server:
            server.publish(estimate, epoch=5)
            server.start()
            # Two small submissions fit one coalesced task; the third splits.
            tickets = [
                server.submit_range_mass(queries[:15]),
                server.submit_range_mass(queries[15:30]),
                server.submit_range_mass(queries[30:130]),
            ]
            server.flush()
            batches = [server.collect(ticket) for ticket in tickets]
            for batch, lo, hi in zip(batches, (0, 15, 30), (15, 30, 130)):
                np.testing.assert_array_equal(
                    batch.answers, serial.range_mass(queries[lo:hi])
                )
                assert all(epoch == 5 for epoch in batch.epochs)
            # The 100-row ticket spans more than one coalesced task.
            assert len(batches[2].generations) >= 2
            assert set(batches[2].generations) == {2}

    def test_publish_between_batches_moves_the_answers(self, grid, estimate, queries):
        rng = np.random.default_rng(7)
        second = grid.distribution(rng.random((3000, 2)))
        with ServingServer(grid, workers=1) as server:
            server.publish(estimate, epoch=0)
            server.start()
            before = server.range_mass(queries)
            server.publish(second, epoch=1)
            after = server.range_mass(queries)
            assert not np.array_equal(before, after)
            np.testing.assert_array_equal(
                after, QueryEngine(second).range_mass(queries)
            )


class TestFailureSurfacing:
    def test_worker_read_timeout_is_reported_not_fatal(self, grid, queries):
        # No snapshot is ever published: the worker's seqlock read times out and
        # the failure comes back as an error result instead of a dead worker.
        with ServingServer(grid, workers=1, read_timeout=0.1) as server:
            server.start()
            ticket = server.submit_range_mass(queries[:10])
            with pytest.raises(RuntimeError, match="TimeoutError"):
                server.collect(ticket, timeout=10.0)

    def test_dead_publisher_mid_publish_is_reported_not_a_hang(
        self, grid, estimate, queries
    ):
        # Regression: leave the seqlock generation odd (writer died between its
        # two bumps).  Pre-fix every worker read spun for the full read_timeout;
        # now the worker fails the task with TornSnapshotError and the server
        # surfaces it as an error result.
        with ServingServer(grid, workers=1, torn_timeout=0.15) as server:
            server.publish(estimate, epoch=0)
            server.start()
            server.writer._header[0] += 1  # generation stuck odd
            ticket = server.submit_range_mass(queries[:10])
            with pytest.raises(RuntimeError, match="TornSnapshotError"):
                server.collect(ticket, timeout=20.0)

    def test_closed_server_refuses_traffic(self, grid, estimate, queries):
        server = ServingServer(grid, workers=1)
        server.publish(estimate)
        server.close()
        server.close()  # idempotent
        with pytest.raises(RuntimeError, match="closed"):
            server.submit_range_mass(queries[:5])
        with pytest.raises(RuntimeError, match="closed"):
            server.start()


class TestWorkloadArena:
    def test_empty_workload_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            WorkloadArena(np.empty((0, 4)))

    def test_bounds_validated(self, grid, estimate, queries):
        with ServingServer(grid, workers=1) as server:
            server.publish(estimate)
            server.start()
            with WorkloadArena(queries[:20]) as arena:
                with pytest.raises(ValueError, match="start < stop"):
                    server.serve_staged(arena, start=10, stop=5)
                with pytest.raises(ValueError, match="start < stop"):
                    server.serve_staged(arena, stop=21)
