"""Seqlock snapshot protocol: consistency, retries, bit-identity, lifecycle."""

from __future__ import annotations

import sys
import threading
import time

import numpy as np
import pytest

from repro.core.domain import GridDistribution, GridSpec
from repro.queries.engine import QueryEngine
from repro.serving.shm import (
    _GENERATION,
    SnapshotReader,
    SnapshotSpec,
    SnapshotWriter,
    TornSnapshotError,
)


def hotspot(grid: GridSpec, cell: int, mass: float = 0.75) -> GridDistribution:
    """A distribution whose argmax encodes ``cell`` — torn reads are detectable."""
    n = grid.n_cells
    probabilities = np.full(n, (1.0 - mass) / (n - 1))
    probabilities[cell] = mass
    return GridDistribution(grid, probabilities.reshape(grid.d, grid.d))


@pytest.fixture()
def grid():
    return GridSpec.unit(5)


class TestSnapshotSpec:
    def test_grid_roundtrip(self, grid):
        with SnapshotWriter(grid) as writer:
            spec = writer.spec
            assert spec.d == 5
            rebuilt = spec.grid()
            assert rebuilt.d == grid.d
            assert rebuilt.domain.bounds == grid.domain.bounds

    def test_size_bytes_covers_header_and_buffers(self):
        spec = SnapshotSpec(name="x", d=4, bounds=(0.0, 1.0, 0.0, 1.0))
        assert spec.size_bytes == 32 + 16 * 8 + 25 * 8


class TestSnapshotWriter:
    def test_publish_advances_even_generations(self, grid):
        with SnapshotWriter(grid) as writer:
            assert writer.generation == 0
            assert writer.publish(hotspot(grid, 0), epoch=0) == 2
            assert writer.publish(hotspot(grid, 1), epoch=1) == 4
            assert writer.generation == 4

    def test_grid_mismatch_rejected(self, grid):
        with SnapshotWriter(grid) as writer:
            with pytest.raises(ValueError, match="does not match"):
                writer.publish(hotspot(GridSpec.unit(4), 0))

    def test_negative_epoch_rejected(self, grid):
        with SnapshotWriter(grid) as writer:
            with pytest.raises(ValueError, match="non-negative"):
                writer.publish(hotspot(grid, 0), epoch=-1)

    def test_closed_writer_refuses_publish_and_unlinks(self, grid):
        writer = SnapshotWriter(grid)
        name = writer.spec.name
        writer.close()
        writer.close()  # idempotent
        with pytest.raises(RuntimeError, match="closed"):
            writer.publish(hotspot(grid, 0))
        with pytest.raises(FileNotFoundError):
            SnapshotReader(SnapshotSpec(name=name, d=5, bounds=grid.domain.bounds))


class TestSnapshotReader:
    def test_answers_bit_identical_to_serial_engine(self, grid):
        estimate = hotspot(grid, 7)
        serial = QueryEngine(estimate)
        queries = np.array([[0.0, 1.0, 0.0, 1.0], [0.1, 0.7, 0.2, 0.9]])
        with SnapshotWriter(grid) as writer:
            writer.publish(estimate, epoch=3)
            with SnapshotReader(writer.spec) as reader:
                answers, generation, epoch = reader.read(
                    lambda engine: engine.range_mass(queries)
                )
                assert generation == 2 and epoch == 3
                np.testing.assert_array_equal(answers, serial.range_mass(queries))

    def test_epoch_is_none_until_labelled(self, grid):
        with SnapshotWriter(grid) as writer:
            writer.publish(hotspot(grid, 0))
            with SnapshotReader(writer.spec) as reader:
                _, _, epoch = reader.read(lambda engine: None)
                assert epoch is None

    def test_ready_and_wait_ready(self, grid):
        with SnapshotWriter(grid) as writer:
            with SnapshotReader(writer.spec) as reader:
                assert not reader.ready
                with pytest.raises(TimeoutError, match="no snapshot published"):
                    reader.wait_ready(timeout=0.05)
                with pytest.raises(TimeoutError, match="no consistent snapshot"):
                    reader.read(lambda engine: None, timeout=0.05)
                writer.publish(hotspot(grid, 2))
                reader.wait_ready(timeout=5.0)
                assert reader.ready

    def test_geometry_validated_at_attach(self, grid):
        with SnapshotWriter(grid) as writer:
            wrong_d = SnapshotSpec(
                name=writer.spec.name, d=4, bounds=grid.domain.bounds
            )
            with pytest.raises(ValueError, match="holds d=5"):
                SnapshotReader(wrong_d)
            too_big = SnapshotSpec(
                name=writer.spec.name, d=64, bounds=grid.domain.bounds
            )
            with pytest.raises(ValueError, match="bytes"):
                SnapshotReader(too_big)

    def test_closed_reader_refuses_reads(self, grid):
        with SnapshotWriter(grid) as writer:
            writer.publish(hotspot(grid, 0))
            reader = SnapshotReader(writer.spec)
            reader.close()
            reader.close()  # idempotent
            with pytest.raises(RuntimeError, match="closed"):
                reader.read(lambda engine: None)

    def test_pinned_copy_survives_later_publishes(self, grid):
        with SnapshotWriter(grid) as writer:
            writer.publish(hotspot(grid, 0), epoch=0)
            with SnapshotReader(writer.spec) as reader:
                pinned, generation, epoch = reader.pinned()
                assert (generation, epoch) == (2, 0)
                before = pinned.estimate.probabilities.copy()
                writer.publish(hotspot(grid, 24), epoch=1)
                # The pinned engine is a private copy: untouched by the publish...
                np.testing.assert_array_equal(pinned.estimate.probabilities, before)
                # ...while live reads see the new window.
                _, generation, epoch = reader.read(lambda engine: None)
                assert (generation, epoch) == (4, 1)


class TestTornSnapshot:
    """Regression: a writer that dies mid-publish must not hang every reader.

    Pre-fix, a generation stuck odd sent :meth:`SnapshotReader.read` into its
    retry loop for the *full* read timeout (30 s by default, per query, forever
    after).  The fix detects "odd and unchanged for ``torn_timeout``" and raises
    the dedicated :class:`TornSnapshotError` instead.
    """

    def test_header_left_odd_raises_torn_error_fast(self, grid):
        with SnapshotWriter(grid) as writer:
            writer.publish(hotspot(grid, 0), epoch=0)
            # Simulate the writer dying between its two generation bumps.
            writer._header[_GENERATION] += 1
            assert writer.generation % 2 == 1
            with SnapshotReader(writer.spec) as reader:
                start = time.monotonic()
                with pytest.raises(TornSnapshotError, match="stuck at odd generation"):
                    reader.read(lambda engine: None, timeout=30.0, torn_timeout=0.15)
                # Fails fast — nowhere near the 30 s read timeout.
                assert time.monotonic() - start < 5.0

    def test_torn_error_is_a_runtime_error(self):
        assert issubclass(TornSnapshotError, RuntimeError)

    def test_slow_but_alive_publish_is_not_torn(self, grid):
        # The generation goes odd but *completes* before torn_timeout: the read
        # must ride out the publish and return the fresh snapshot.
        with SnapshotWriter(grid) as writer:
            writer.publish(hotspot(grid, 0), epoch=0)
            writer._header[_GENERATION] += 1  # publish "in progress"

            def finish_publish() -> None:
                time.sleep(0.05)
                writer._probabilities[:] = hotspot(grid, 24).probabilities
                writer._table[:] = hotspot(grid, 24).cumulative()
                writer._header[1] = 1  # epoch slot
                writer._header[_GENERATION] += 1

            with SnapshotReader(writer.spec) as reader:
                finisher = threading.Thread(target=finish_publish)
                finisher.start()
                try:
                    (_, argmax), _, epoch = reader.read(
                        lambda engine: (None, int(np.argmax(engine.estimate.probabilities))),
                        timeout=10.0,
                        torn_timeout=1.0,
                    )
                finally:
                    finisher.join()
                assert (argmax, epoch) == (24, 1)

    def test_torn_timeout_validated(self, grid):
        with SnapshotWriter(grid) as writer:
            writer.publish(hotspot(grid, 0))
            with SnapshotReader(writer.spec) as reader:
                with pytest.raises(ValueError, match="torn_timeout"):
                    reader.read(lambda engine: None, torn_timeout=0.0)

    def test_pinned_surfaces_torn_snapshot(self, grid):
        with SnapshotWriter(grid) as writer:
            writer.publish(hotspot(grid, 0), epoch=0)
            writer._header[_GENERATION] += 1
            with SnapshotReader(writer.spec) as reader:
                with pytest.raises(TornSnapshotError):
                    reader.pinned(timeout=30.0, torn_timeout=0.15)


class TestSeqlock:
    def test_read_retries_when_a_publish_overlaps(self, grid):
        """Deterministic retry: the read's fn triggers a publish mid-read."""
        with SnapshotWriter(grid) as writer:
            writer.publish(hotspot(grid, 0), epoch=0)
            with SnapshotReader(writer.spec) as reader:
                calls = {"n": 0}

                def fn(engine):
                    calls["n"] += 1
                    if calls["n"] == 1:  # overlap the first attempt
                        writer.publish(hotspot(grid, 24), epoch=1)
                    return engine.range_mass(np.array([[0.0, 0.2, 0.0, 0.2]]))

                answers, generation, epoch = reader.read(fn)
                assert calls["n"] == 2
                assert reader.retries == 1
                # The discarded first attempt never escapes: the result is the
                # post-publish snapshot, label and bytes agreeing.
                assert (generation, epoch) == (4, 1)
                np.testing.assert_array_equal(
                    answers,
                    QueryEngine(hotspot(grid, 24)).range_mass(
                        np.array([[0.0, 0.2, 0.0, 0.2]])
                    ),
                )

    def test_no_torn_pair_under_concurrent_writer(self, grid):
        """A hammering writer thread never lets a reader mix two snapshots.

        Estimate A hotspots cell 0 (even epochs), estimate B cell 24 (odd).
        Each read returns a SAT-derived answer plus the posterior argmax; a torn
        posterior/SAT pair, or an epoch label from the wrong publish, would make
        the triple inconsistent.
        """
        a, b = hotspot(grid, 0), hotspot(grid, 24)
        queries = np.array([[0.0, 0.2, 0.0, 0.2]])
        expected = {
            0: (QueryEngine(a).range_mass(queries), 0),
            1: (QueryEngine(b).range_mass(queries), 24),
        }

        with SnapshotWriter(grid) as writer:
            writer.publish(a, epoch=0)
            done = threading.Event()

            def hammer() -> None:
                for epoch in range(1, 1200):
                    writer.publish(a if epoch % 2 == 0 else b, epoch=epoch)
                done.set()

            def observe(engine):
                return (
                    engine.range_mass(queries),
                    int(np.argmax(engine.estimate.probabilities)),
                )

            switch = sys.getswitchinterval()
            sys.setswitchinterval(1e-5)
            writer_thread = threading.Thread(target=hammer)
            writer_thread.start()
            try:
                with SnapshotReader(writer.spec) as reader:
                    observations = 0
                    while not done.is_set() or observations == 0:
                        (answers, argmax), _, epoch = reader.read(observe)
                        want_answers, want_argmax = expected[epoch % 2]
                        np.testing.assert_array_equal(answers, want_answers)
                        assert argmax == want_argmax
                        observations += 1
            finally:
                writer_thread.join()
                sys.setswitchinterval(switch)
            assert observations > 0
