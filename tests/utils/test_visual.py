"""Tests for repro.utils.visual — ASCII heat maps and sparklines."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.domain import GridDistribution
from repro.utils.visual import ascii_heatmap, side_by_side, sparkline


class TestAsciiHeatmap:
    def test_shape(self):
        text = ascii_heatmap(np.ones((3, 5)))
        lines = text.splitlines()
        assert len(lines) == 3
        assert all(len(line) == 5 for line in lines)

    def test_title_included(self):
        assert ascii_heatmap(np.ones((2, 2)), title="density").splitlines()[0] == "density"

    def test_peak_gets_darkest_shade(self):
        grid = np.zeros((2, 2))
        grid[0, 0] = 1.0
        text = ascii_heatmap(grid, flip_vertical=False)
        assert text.splitlines()[0][0] == "@"

    def test_vertical_flip(self):
        grid = np.zeros((2, 2))
        grid[1, 1] = 1.0  # top-right in grid coordinates
        flipped = ascii_heatmap(grid, flip_vertical=True)
        assert flipped.splitlines()[0][1] == "@"

    def test_accepts_grid_distribution(self, unit_grid5):
        text = ascii_heatmap(GridDistribution.uniform(unit_grid5))
        assert len(text.splitlines()) == 5

    def test_all_zero_grid(self):
        text = ascii_heatmap(np.zeros((2, 2)))
        assert set("".join(text.splitlines())) == {" "}

    def test_negative_values_rejected(self):
        with pytest.raises(ValueError):
            ascii_heatmap(np.array([[-1.0, 0.0]]))

    def test_wrong_dimension_rejected(self):
        with pytest.raises(ValueError):
            ascii_heatmap(np.ones(4))

    def test_too_few_shades_rejected(self):
        with pytest.raises(ValueError):
            ascii_heatmap(np.ones((2, 2)), shades="#")


class TestSparkline:
    def test_length(self):
        assert len(sparkline([1, 2, 3, 4])) == 4

    def test_monotone_series(self):
        bars = sparkline([0, 1, 2, 3])
        assert bars[0] == "▁" and bars[-1] == "█"

    def test_constant_series(self):
        assert sparkline([5, 5, 5]) == "▁▁▁"

    def test_empty_series(self):
        assert sparkline([]) == ""

    def test_non_finite_rejected(self):
        with pytest.raises(ValueError):
            sparkline([1.0, float("nan")])


class TestSideBySide:
    def test_combines_blocks(self):
        combined = side_by_side("ab\ncd", "xy\nzw", gap=2)
        assert combined.splitlines() == ["ab  xy", "cd  zw"]

    def test_uneven_heights_padded(self):
        combined = side_by_side("a", "x\ny")
        assert len(combined.splitlines()) == 2

    def test_negative_gap_rejected(self):
        with pytest.raises(ValueError):
            side_by_side("a", "b", gap=-1)
