"""Tests for repro.utils.rng."""

from __future__ import annotations

import numpy as np
import pytest

from repro.utils.rng import ensure_rng, sample_categorical, spawn_rngs, weighted_sample_index


class TestEnsureRng:
    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = ensure_rng(7).random(5)
        b = ensure_rng(7).random(5)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        assert not np.allclose(ensure_rng(1).random(5), ensure_rng(2).random(5))

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert ensure_rng(gen) is gen

    def test_seed_sequence_accepted(self):
        seq = np.random.SeedSequence(42)
        assert isinstance(ensure_rng(seq), np.random.Generator)

    def test_negative_seed_rejected(self):
        with pytest.raises(ValueError):
            ensure_rng(-1)

    def test_float_seed_rejected(self):
        with pytest.raises(TypeError):
            ensure_rng(3.14)

    def test_legacy_randomstate_rejected(self):
        with pytest.raises(TypeError):
            ensure_rng(np.random.RandomState(0))


class TestSpawnRngs:
    def test_count_respected(self):
        assert len(spawn_rngs(0, 4)) == 4

    def test_children_are_independent_streams(self):
        children = spawn_rngs(0, 2)
        assert not np.allclose(children[0].random(10), children[1].random(10))

    def test_deterministic_for_int_seed(self):
        a = [g.random() for g in spawn_rngs(5, 3)]
        b = [g.random() for g in spawn_rngs(5, 3)]
        assert a == b

    def test_deterministic_for_generator_seed(self):
        a = [g.random() for g in spawn_rngs(np.random.default_rng(5), 3)]
        b = [g.random() for g in spawn_rngs(np.random.default_rng(5), 3)]
        assert a == b

    def test_zero_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, 0)

    def test_none_seed_accepted(self):
        assert len(spawn_rngs(None, 2)) == 2


class TestSampleCategorical:
    def test_single_draw_is_int(self):
        value = sample_categorical(np.random.default_rng(0), np.array([0.2, 0.8]))
        assert value in (0, 1)

    def test_multiple_draws_shape(self):
        values = sample_categorical(np.random.default_rng(0), np.array([0.5, 0.5]), size=100)
        assert values.shape == (100,)

    def test_degenerate_distribution(self):
        values = sample_categorical(np.random.default_rng(0), np.array([0.0, 1.0, 0.0]), size=50)
        assert np.all(values == 1)

    def test_unnormalised_weights_accepted(self):
        values = sample_categorical(np.random.default_rng(0), np.array([2.0, 6.0]), size=2000)
        assert abs((values == 1).mean() - 0.75) < 0.05

    def test_negative_weights_rejected(self):
        with pytest.raises(ValueError):
            sample_categorical(np.random.default_rng(0), np.array([0.5, -0.1]))

    def test_zero_sum_rejected(self):
        with pytest.raises(ValueError):
            sample_categorical(np.random.default_rng(0), np.array([0.0, 0.0]))

    def test_matrix_weights_rejected(self):
        with pytest.raises(ValueError):
            sample_categorical(np.random.default_rng(0), np.eye(2))


class TestWeightedSampleIndex:
    def test_respects_weights(self):
        rng = np.random.default_rng(3)
        draws = [weighted_sample_index(rng, [1.0, 9.0]) for _ in range(2000)]
        assert abs(np.mean(draws) - 0.9) < 0.05

    def test_returns_python_int(self):
        assert isinstance(weighted_sample_index(np.random.default_rng(0), [1.0, 1.0]), int)
