"""Tests for repro.utils.histogram."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.utils.histogram import (
    cell_index,
    counts_to_distribution,
    distribution_to_counts,
    flatten_grid,
    grid_cell_centers,
    pairwise_cell_distances,
    points_to_grid_counts,
    unflatten_grid,
)

UNIT_BOUNDS = (0.0, 1.0, 0.0, 1.0)


class TestPointsToGridCounts:
    def test_total_count_preserved(self):
        rng = np.random.default_rng(0)
        pts = rng.random((500, 2))
        counts = points_to_grid_counts(pts, UNIT_BOUNDS, 4)
        assert counts.sum() == 500

    def test_single_point_lands_in_right_cell(self):
        counts = points_to_grid_counts(np.array([[0.9, 0.1]]), UNIT_BOUNDS, 2)
        # x=0.9 -> col 1, y=0.1 -> row 0
        assert counts[0, 1] == 1
        assert counts.sum() == 1

    def test_boundary_points_clipped_into_last_cell(self):
        counts = points_to_grid_counts(np.array([[1.0, 1.0]]), UNIT_BOUNDS, 3)
        assert counts[2, 2] == 1

    def test_out_of_range_points_clipped(self):
        counts = points_to_grid_counts(np.array([[2.0, -1.0]]), UNIT_BOUNDS, 3)
        assert counts[0, 2] == 1

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError):
            points_to_grid_counts(np.zeros((1, 2)), (1.0, 0.0, 0.0, 1.0), 3)

    def test_shape(self):
        counts = points_to_grid_counts(np.random.default_rng(1).random((50, 2)), UNIT_BOUNDS, 7)
        assert counts.shape == (7, 7)

    @given(st.integers(min_value=1, max_value=12), st.integers(min_value=0, max_value=200))
    @settings(max_examples=25, deadline=None)
    def test_counts_always_sum_to_n(self, d, n):
        rng = np.random.default_rng(n + d)
        pts = rng.random((n, 2))
        assert points_to_grid_counts(pts, UNIT_BOUNDS, d).sum() == n


class TestCellIndex:
    def test_midpoints(self):
        idx = cell_index(np.array([0.1, 0.5, 0.9]), 0.0, 1.0, 10)
        np.testing.assert_array_equal(idx, [1, 5, 9])

    def test_upper_bound_clipped(self):
        assert cell_index(np.array([1.0]), 0.0, 1.0, 4)[0] == 3


class TestCountsToDistribution:
    def test_normalises(self):
        dist = counts_to_distribution(np.array([[1, 3], [0, 0]]))
        assert dist.sum() == pytest.approx(1.0)
        assert dist[0, 1] == pytest.approx(0.75)

    def test_all_zero_gives_uniform(self):
        dist = counts_to_distribution(np.zeros((3, 3)))
        np.testing.assert_allclose(dist, 1.0 / 9)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            counts_to_distribution(np.array([[-1, 2]]))


class TestDistributionToCounts:
    def test_scales(self):
        counts = distribution_to_counts(np.array([0.25, 0.75]), 100)
        np.testing.assert_allclose(counts, [25.0, 75.0])

    def test_negative_n_rejected(self):
        with pytest.raises(ValueError):
            distribution_to_counts(np.array([1.0]), -5)


class TestFlattenUnflatten:
    def test_roundtrip(self):
        grid = np.arange(9.0).reshape(3, 3)
        np.testing.assert_array_equal(unflatten_grid(flatten_grid(grid), 3), grid)

    def test_unflatten_infers_side(self):
        vec = np.arange(16.0)
        assert unflatten_grid(vec).shape == (4, 4)

    def test_flatten_rejects_non_square(self):
        with pytest.raises(ValueError):
            flatten_grid(np.zeros((2, 3)))

    def test_unflatten_rejects_non_square_length(self):
        with pytest.raises(ValueError):
            unflatten_grid(np.zeros(10))

    def test_row_major_order(self):
        grid = np.array([[1.0, 2.0], [3.0, 4.0]])
        np.testing.assert_array_equal(flatten_grid(grid), [1.0, 2.0, 3.0, 4.0])


class TestGridCellCenters:
    def test_unit_square_centres(self):
        centers = grid_cell_centers(2)
        expected = np.array([[0.25, 0.25], [0.75, 0.25], [0.25, 0.75], [0.75, 0.75]])
        np.testing.assert_allclose(centers, expected)

    def test_count(self):
        assert grid_cell_centers(6).shape == (36, 2)

    def test_custom_bounds(self):
        centers = grid_cell_centers(1, bounds=(-2.0, 2.0, 0.0, 10.0))
        np.testing.assert_allclose(centers, [[0.0, 5.0]])


class TestPairwiseCellDistances:
    def test_diagonal_zero(self):
        dist = pairwise_cell_distances(3)
        np.testing.assert_allclose(np.diag(dist), 0.0)

    def test_symmetry(self):
        dist = pairwise_cell_distances(4)
        np.testing.assert_allclose(dist, dist.T)

    def test_adjacent_cell_distance(self):
        dist = pairwise_cell_distances(2)
        # cells 0 and 1 are horizontally adjacent: centre distance = 0.5
        assert dist[0, 1] == pytest.approx(0.5)

    def test_l1_metric(self):
        dist = pairwise_cell_distances(2, ord=1.0)
        # cells 0 (0.25,0.25) and 3 (0.75,0.75): L1 distance 1.0
        assert dist[0, 3] == pytest.approx(1.0)

    def test_triangle_inequality_l2(self):
        dist = pairwise_cell_distances(3)
        n = dist.shape[0]
        for i in range(n):
            for j in range(n):
                assert np.all(dist[i, j] <= dist[i, :] + dist[:, j] + 1e-12)
