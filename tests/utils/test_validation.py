"""Tests for repro.utils.validation."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.utils.validation import (
    check_bounds,
    check_epsilon,
    check_grid_side,
    check_points,
    check_positive,
    check_probability_matrix,
    check_probability_vector,
    check_radius,
)


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive(2.5, "x") == 2.5

    def test_rejects_zero_by_default(self):
        with pytest.raises(ValueError):
            check_positive(0.0, "x")

    def test_allows_zero_when_requested(self):
        assert check_positive(0.0, "x", allow_zero=True) == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_positive(-1.0, "x", allow_zero=True)

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            check_positive(float("nan"), "x")

    def test_rejects_inf(self):
        with pytest.raises(ValueError):
            check_positive(float("inf"), "x")

    def test_rejects_non_numeric(self):
        with pytest.raises(TypeError):
            check_positive("abc", "x")

    def test_error_message_contains_name(self):
        with pytest.raises(ValueError, match="my_param"):
            check_positive(-1, "my_param")


class TestCheckEpsilon:
    @pytest.mark.parametrize("eps", [0.1, 0.7, 3.5, 9.0, 50.0])
    def test_accepts_paper_range(self, eps):
        assert check_epsilon(eps) == eps

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            check_epsilon(0.0)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_epsilon(-1.0)

    def test_rejects_implausibly_large(self):
        with pytest.raises(ValueError, match="implausibly large"):
            check_epsilon(1000.0)


class TestCheckGridSide:
    @pytest.mark.parametrize("d", [1, 2, 15, 20, 300])
    def test_accepts_valid_sides(self, d):
        assert check_grid_side(d) == d

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            check_grid_side(0)

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            check_grid_side(True)

    def test_rejects_float(self):
        with pytest.raises(TypeError):
            check_grid_side(2.5)

    def test_rejects_huge(self):
        with pytest.raises(ValueError):
            check_grid_side(10_000)

    def test_accepts_numpy_integer(self):
        assert check_grid_side(np.int64(7)) == 7


class TestCheckRadius:
    def test_accepts_positive(self):
        assert check_radius(0.3) == 0.3

    def test_rejects_zero_by_default(self):
        with pytest.raises(ValueError):
            check_radius(0.0)

    def test_custom_name_in_error(self):
        with pytest.raises(ValueError, match="b_hat"):
            check_radius(-1, name="b_hat")


class TestCheckProbabilityVector:
    def test_accepts_valid(self):
        out = check_probability_vector(np.array([0.25, 0.75]))
        np.testing.assert_allclose(out, [0.25, 0.75])

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_probability_vector(np.array([-0.1, 1.1]))

    def test_rejects_not_normalised(self):
        with pytest.raises(ValueError):
            check_probability_vector(np.array([0.4, 0.4]))

    def test_allows_unnormalised_when_requested(self):
        out = check_probability_vector(np.array([0.4, 0.4]), require_normalised=False)
        np.testing.assert_allclose(out, [0.4, 0.4])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            check_probability_vector(np.array([]))

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            check_probability_vector(np.eye(2))

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            check_probability_vector(np.array([np.nan, 1.0]))

    @given(st.integers(min_value=2, max_value=30), st.integers(min_value=0, max_value=10**6))
    def test_normalised_random_vectors_pass(self, size, seed):
        rng = np.random.default_rng(seed)
        vec = rng.random(size)
        vec = vec / vec.sum()
        out = check_probability_vector(vec)
        assert out.shape == (size,)


class TestCheckProbabilityMatrix:
    def test_accepts_row_stochastic(self):
        matrix = np.array([[0.5, 0.5], [0.9, 0.1]])
        np.testing.assert_allclose(check_probability_matrix(matrix), matrix)

    def test_rejects_bad_row_sum(self):
        with pytest.raises(ValueError):
            check_probability_matrix(np.array([[0.5, 0.4], [0.9, 0.1]]))

    def test_rejects_negative_entries(self):
        with pytest.raises(ValueError):
            check_probability_matrix(np.array([[1.2, -0.2], [0.5, 0.5]]))

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            check_probability_matrix(np.array([0.5, 0.5]))


class TestCheckBounds:
    def test_accepts_valid(self):
        assert check_bounds(0.0, 1.0) == (0.0, 1.0)

    def test_rejects_reversed(self):
        with pytest.raises(ValueError):
            check_bounds(1.0, 0.0)

    def test_rejects_equal(self):
        with pytest.raises(ValueError):
            check_bounds(0.5, 0.5)

    def test_rejects_infinite(self):
        with pytest.raises(ValueError):
            check_bounds(0.0, float("inf"))


class TestCheckPoints:
    def test_accepts_n_by_2(self):
        pts = check_points(np.zeros((10, 2)))
        assert pts.shape == (10, 2)

    def test_rejects_wrong_columns(self):
        with pytest.raises(ValueError):
            check_points(np.zeros((10, 3)))

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            check_points(np.array([[0.0, np.nan]]))

    def test_1d_accepted_for_dims_1(self):
        pts = check_points(np.array([1.0, 2.0, 3.0]), dims=1)
        assert pts.shape == (3, 1)
