"""Tests for repro.experiments.reporting."""

from __future__ import annotations

import pytest

from repro.experiments.figures import DatasetPartStatistics
from repro.experiments.reporting import (
    format_series,
    format_sweep,
    format_table,
    format_table3,
    mean_error,
    summarize_winner,
)
from repro.experiments.runner import MeasurementPoint, SweepResult


@pytest.fixture
def sweep() -> SweepResult:
    points = []
    for dataset in ("Crime", "SZipf"):
        for mechanism, offset in (("DAM", 0.0), ("MDSW", 0.1)):
            for d in (2, 4):
                points.append(
                    MeasurementPoint(
                        dataset=dataset,
                        mechanism=mechanism,
                        parameter_name="d",
                        parameter_value=float(d),
                        w2_mean=0.1 * d + offset,
                        w2_std=0.01,
                        n_repeats=2,
                    )
                )
    return SweepResult(name="demo", points=points)


class TestFormatTable:
    def test_contains_headers_and_rows(self):
        text = format_table(["a", "b"], [[1, 2], [3, 4]])
        assert "a" in text and "b" in text
        assert "3" in text

    def test_column_alignment(self):
        text = format_table(["name", "v"], [["long-name-here", 1]])
        lines = text.splitlines()
        assert len(lines[0]) == len(lines[1])


class TestFormatSweep:
    def test_contains_all_mechanisms(self, sweep):
        text = format_sweep(sweep)
        assert "DAM" in text and "MDSW" in text

    def test_row_per_dataset_and_value(self, sweep):
        text = format_sweep(sweep)
        body_rows = text.splitlines()[2:]
        assert len(body_rows) == 4  # 2 datasets x 2 d values

    def test_format_series(self, sweep):
        series = format_series(sweep, "Crime", "DAM")
        assert series == "2: 0.2000, 4: 0.4000"


class TestSummaries:
    def test_winner_is_dam(self, sweep):
        winners = summarize_winner(sweep)
        assert winners == {"Crime": "DAM", "SZipf": "DAM"}

    def test_mean_error(self, sweep):
        assert mean_error(sweep, "Crime", "MDSW") == pytest.approx(0.4)

    def test_mean_error_missing_rejected(self, sweep):
        with pytest.raises(ValueError):
            mean_error(sweep, "Crime", "HUEM")


class TestFormatTable3:
    def test_renders_rows(self):
        rows = [
            DatasetPartStatistics(
                dataset="Crime",
                part="chicago-part-a",
                lat_range=(41.72, 41.81),
                lon_range=(-87.68, -87.59),
                paper_points=216_595,
                surrogate_points=1000,
            )
        ]
        text = format_table3(rows)
        assert "chicago-part-a" in text
        assert "216595" in text
