"""Tests for repro.experiments.export — CSV / JSON / markdown serialisation."""

from __future__ import annotations

import json

import pytest

from repro.experiments.export import (
    sweep_from_json,
    sweep_to_csv,
    sweep_to_json,
    sweep_to_markdown,
    sweep_to_records,
    write_all,
)
from repro.experiments.runner import MeasurementPoint, SweepResult


@pytest.fixture
def sweep() -> SweepResult:
    points = [
        MeasurementPoint(
            dataset="Crime",
            mechanism=mechanism,
            parameter_name="d",
            parameter_value=float(d),
            w2_mean=0.1 * d + offset,
            w2_std=0.02,
            n_repeats=2,
            details={"d": d, "epsilon": 3.5},
        )
        for mechanism, offset in (("DAM", 0.0), ("MDSW", 0.05))
        for d in (2, 4)
    ]
    return SweepResult(name="unit-sweep", points=points)


class TestRecords:
    def test_one_record_per_point(self, sweep):
        assert len(sweep_to_records(sweep)) == 4

    def test_details_flattened(self, sweep):
        record = sweep_to_records(sweep)[0]
        assert record["detail_epsilon"] == 3.5
        assert record["sweep"] == "unit-sweep"


class TestCsv:
    def test_header_and_rows(self, sweep):
        text = sweep_to_csv(sweep)
        lines = text.strip().splitlines()
        assert lines[0].startswith("sweep,dataset,mechanism")
        assert len(lines) == 5

    def test_written_to_file(self, sweep, tmp_path):
        path = tmp_path / "out.csv"
        sweep_to_csv(sweep, path)
        assert path.read_text().startswith("sweep,")


class TestJsonRoundTrip:
    def test_valid_json(self, sweep):
        payload = json.loads(sweep_to_json(sweep))
        assert payload["sweep"] == "unit-sweep"
        assert len(payload["points"]) == 4

    def test_round_trip_preserves_series(self, sweep):
        restored = sweep_from_json(sweep_to_json(sweep))
        assert restored.name == sweep.name
        assert restored.series("Crime", "DAM") == sweep.series("Crime", "DAM")
        assert restored.points[0].details["epsilon"] == 3.5

    def test_written_to_file(self, sweep, tmp_path):
        path = tmp_path / "out.json"
        sweep_to_json(sweep, path)
        assert json.loads(path.read_text())["sweep"] == "unit-sweep"


class TestMarkdown:
    def test_table_structure(self, sweep):
        text = sweep_to_markdown(sweep)
        lines = text.splitlines()
        assert lines[0].startswith("| dataset | d |")
        assert len(lines) == 2 + 2  # header + divider + 2 parameter values

    def test_values_present(self, sweep):
        assert "0.2000" in sweep_to_markdown(sweep)


class TestWriteAll:
    def test_creates_files(self, sweep, tmp_path):
        created = write_all([sweep], tmp_path)
        assert len(created) == 2
        assert all(path.exists() for path in created)
