"""Tests for repro.experiments.runner — mechanism factory and the sweep machinery."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.dam import DiscreteDAM
from repro.core.domain import GridSpec, SpatialDomain
from repro.datasets.loader import load_dataset
from repro.experiments.config import smoke_config
from repro.experiments.runner import (
    MECHANISM_NAMES,
    build_mechanism,
    calibrated_sem_epsilon,
    evaluate_on_dataset,
    evaluate_on_part,
    evaluate_range_queries_on_part,
    evaluate_stream_on_part,
    evaluate_trajectories_on_part,
    sweep_parameter,
    sweep_range_query_error,
    sweep_stream_error,
    sweep_trajectory_error,
)
from repro.mechanisms.sem_geo_i import SEMGeoI
from repro.metrics.local_privacy import local_privacy_of_mechanism


@pytest.fixture(scope="module")
def grid5() -> GridSpec:
    return GridSpec.unit(5)


class TestBuildMechanism:
    @pytest.mark.parametrize("name", MECHANISM_NAMES)
    def test_all_names_construct(self, grid5, name):
        mech = build_mechanism(name, grid5, 2.0, calibrate_sem=False)
        assert mech.grid is grid5

    def test_dam_ns_flag(self, grid5):
        mech = build_mechanism("DAM-NS", grid5, 2.0)
        assert isinstance(mech, DiscreteDAM)
        assert mech.use_shrinkage is False

    def test_b_hat_override(self, grid5):
        assert build_mechanism("DAM", grid5, 2.0, b_hat=2).b_hat == 2

    def test_sem_calibration_changes_epsilon(self, grid5):
        calibrated = build_mechanism("SEM-Geo-I", grid5, 3.5, calibrate_sem=True)
        raw = build_mechanism("SEM-Geo-I", grid5, 3.5, calibrate_sem=False)
        assert isinstance(calibrated, SEMGeoI)
        assert calibrated.epsilon != pytest.approx(raw.epsilon)

    def test_unknown_name_rejected(self, grid5):
        with pytest.raises(ValueError):
            build_mechanism("PrivTree", grid5, 1.0)


class TestCalibration:
    def test_calibrated_epsilon_matches_dam_lp(self, grid5):
        eps = 2.8
        sem_eps = calibrated_sem_epsilon(grid5, eps)
        dam_lp = local_privacy_of_mechanism(DiscreteDAM(grid5, eps))
        sem_lp = local_privacy_of_mechanism(SEMGeoI(grid5, sem_eps))
        assert sem_lp == pytest.approx(dam_lp, rel=0.02)

    def test_cached(self, grid5):
        assert calibrated_sem_epsilon(grid5, 2.0) == calibrated_sem_epsilon(grid5, 2.0)

    def test_single_cell_grid_passthrough(self):
        grid = GridSpec.unit(1)
        assert calibrated_sem_epsilon(grid, 2.0) == 2.0


class TestEvaluate:
    def test_evaluate_on_part_returns_error(self, rng):
        points = rng.random((2000, 2))
        domain = SpatialDomain.unit()
        error = evaluate_on_part("DAM", points, domain, d=5, epsilon=3.5, seed=0)
        assert 0 <= error <= np.sqrt(2)

    def test_normalisation_makes_scales_comparable(self, rng):
        """The same relative point pattern on a 100x bigger domain gives the same W2."""
        unit_points = rng.random((2000, 2))
        big_domain = SpatialDomain(0, 100, 0, 100)
        big_points = unit_points * 100
        a = evaluate_on_part("DAM", unit_points, SpatialDomain.unit(), 5, 3.5, seed=1)
        b = evaluate_on_part("DAM", big_points, big_domain, 5, 3.5, seed=1)
        assert a == pytest.approx(b, rel=1e-9)

    def test_max_users_cap(self, rng):
        points = rng.random((5000, 2))
        error = evaluate_on_part("DAM", points, SpatialDomain.unit(), 5, 3.5, seed=2, max_users=500)
        assert error >= 0

    def test_evaluate_on_dataset_averages_parts(self):
        config = smoke_config()
        dataset = load_dataset("NYC", scale=config.dataset_scale, seed=0)
        mean, std = evaluate_on_dataset("DAM", dataset, 4, 3.5, config, seed=1)
        assert mean > 0
        assert std >= 0


class TestSweep:
    def test_d_sweep_structure(self):
        config = smoke_config()
        result = sweep_parameter(
            "test-sweep", "d", (2, 4), ("DAM", "MDSW"), config, datasets=("SZipf",)
        )
        assert result.datasets() == ["SZipf"]
        assert set(result.mechanisms()) == {"DAM", "MDSW"}
        assert len(result.points) == 4
        series = result.series("SZipf", "DAM")
        assert [x for x, _ in series] == [2.0, 4.0]

    def test_epsilon_sweep_uses_default_d(self):
        config = smoke_config()
        result = sweep_parameter(
            "eps-sweep", "epsilon", (3.5,), ("DAM",), config, datasets=("SZipf",)
        )
        assert result.points[0].details["d"] == config.default_d

    def test_b_scale_sweep_sets_b_hat(self):
        config = smoke_config().with_overrides(default_d=8)
        result = sweep_parameter(
            "b-sweep", "b_scale", (1.0, 1.67), ("DAM",), config, datasets=("SZipf",)
        )
        b_values = [p.details["b_hat"] for p in result.points]
        assert all(b >= 1 for b in b_values)

    def test_unknown_parameter_rejected(self):
        with pytest.raises(ValueError):
            sweep_parameter("bad", "gamma", (1,), ("DAM",), smoke_config())

    def test_unknown_metric_rejected(self):
        with pytest.raises(ValueError):
            sweep_parameter(
                "bad-metric",
                "d",
                (2,),
                ("DAM",),
                smoke_config(),
                datasets=("SZipf",),
                metric="chi",
            )


class TestRangeQuerySweep:
    def test_part_evaluation_returns_small_error(self, rng):
        pts = np.clip(rng.normal([0.4, 0.4], 0.1, size=(3000, 2)), 0, 1)
        mae = evaluate_range_queries_on_part(
            "DAM", pts, SpatialDomain.unit(), 6, 5.0, seed=0, n_queries=32
        )
        assert 0.0 <= mae < 0.1

    def test_sweep_structure_and_metric_tag(self):
        config = smoke_config()
        result = sweep_range_query_error(
            "rq-sweep",
            "epsilon",
            (1.4, 3.5),
            ("DAM", "MDSW"),
            config,
            datasets=("SZipf",),
        )
        assert len(result.points) == 4
        for point in result.points:
            assert point.details["metric"] == "range-mae"
            assert 0.0 <= point.w2_mean < 0.5
        assert set(result.mechanisms()) == {"DAM", "MDSW"}

    def test_range_sweep_deterministic_and_distinct_from_w2(self):
        config = smoke_config()
        kwargs = dict(datasets=("SZipf",),)
        first = sweep_range_query_error("rq", "epsilon", (3.5,), ("DAM",), config, **kwargs)
        second = sweep_range_query_error("rq", "epsilon", (3.5,), ("DAM",), config, **kwargs)
        w2 = sweep_parameter("w2", "epsilon", (3.5,), ("DAM",), config, **kwargs)
        assert first.points[0].w2_mean == second.points[0].w2_mean
        assert first.points[0].w2_mean != w2.points[0].w2_mean


class TestTrajectorySweep:
    def test_part_evaluation_returns_bounded_error(self, rng):
        pts = np.clip(rng.normal([0.5, 0.5], 0.12, size=(4000, 2)), 0, 1)
        for mechanism in ("LDPTrace", "PivotTrace", "DAM"):
            w2 = evaluate_trajectories_on_part(
                mechanism,
                pts,
                SpatialDomain.unit(),
                5,
                2.0,
                seed=0,
                routing_d=30,
                n_trajectories=40,
                max_length=15,
            )
            # Normalised-domain W2 is bounded by the unit-square diagonal.
            assert 0.0 <= w2 <= np.sqrt(2)

    def test_sweep_structure_and_metric_tag(self):
        config = smoke_config()
        result = sweep_trajectory_error(
            "traj-sweep",
            "epsilon",
            (1.0, 2.0),
            ("LDPTrace", "DAM"),
            config,
            datasets=("SZipf",),
        )
        assert len(result.points) == 4
        for point in result.points:
            assert point.details["metric"] == "trajectory-w2"
            assert 0.0 <= point.w2_mean <= np.sqrt(2)
        assert set(result.mechanisms()) == {"LDPTrace", "DAM"}

    def test_trajectory_sweep_deterministic_and_cached(self, tmp_path):
        config = smoke_config().with_overrides(cache_dir=str(tmp_path))
        kwargs = dict(datasets=("SZipf",),)
        first = sweep_trajectory_error("traj", "d", (4,), ("PivotTrace",), config, **kwargs)
        second = sweep_trajectory_error("traj", "d", (4,), ("PivotTrace",), config, **kwargs)
        assert first.points[0].w2_mean == second.points[0].w2_mean


class TestStreamSweep:
    def test_part_evaluation_returns_bounded_error(self, rng):
        pts = np.clip(rng.normal([0.5, 0.5], 0.12, size=(4000, 2)), 0, 1)
        mae = evaluate_stream_on_part(
            "DAM",
            pts,
            SpatialDomain.unit(),
            6,
            2.5,
            seed=0,
            n_epochs=4,
            users_per_epoch=400,
            window_epochs=2,
        )
        # Per-cell MAE of two distributions is bounded by 2 / n_cells.
        assert 0.0 <= mae <= 2.0 / 36

    def test_part_evaluation_is_deterministic(self, rng):
        pts = np.clip(rng.normal([0.5, 0.5], 0.12, size=(3000, 2)), 0, 1)
        kwargs = dict(seed=7, n_epochs=3, users_per_epoch=300, window_epochs=2)
        first = evaluate_stream_on_part("HUEM", pts, SpatialDomain.unit(), 5, 2.0, **kwargs)
        second = evaluate_stream_on_part("HUEM", pts, SpatialDomain.unit(), 5, 2.0, **kwargs)
        assert first == second

    def test_rejects_mechanisms_without_transition(self, rng):
        pts = rng.random((500, 2))
        with pytest.raises(TypeError, match="transition-matrix"):
            evaluate_stream_on_part(
                "MDSW",
                pts,
                SpatialDomain.unit(),
                5,
                2.0,
                seed=0,
                n_epochs=2,
                users_per_epoch=100,
            )

    def test_sweep_structure_and_metric_tag(self):
        config = smoke_config()
        result = sweep_stream_error(
            "stream-sweep",
            "epsilon",
            (2.0, 3.5),
            ("DAM",),
            config,
            datasets=("SZipf",),
        )
        assert len(result.points) == 2
        for point in result.points:
            assert point.details["metric"] == "stream-mae"
            assert 0.0 <= point.w2_mean <= 2.0 / config.default_d**2

    def test_stream_sweep_cached(self, tmp_path):
        config = smoke_config().with_overrides(cache_dir=str(tmp_path))
        kwargs = dict(datasets=("SZipf",),)
        first = sweep_stream_error("stream", "d", (4,), ("DAM",), config, **kwargs)
        second = sweep_stream_error("stream", "d", (4,), ("DAM",), config, **kwargs)
        assert first.points[0].w2_mean == second.points[0].w2_mean
