"""Tests for repro.experiments.config — the Table IV / Table V parameter grids."""

from __future__ import annotations

import pytest

from repro.experiments.config import (
    B_SCALE_VALUES,
    D_VALUES_ALL,
    D_VALUES_LARGE,
    D_VALUES_SMALL,
    DEFAULT_D,
    DEFAULT_EPSILON,
    EPSILON_VALUES_ALL,
    EPSILON_VALUES_LARGE,
    EPSILON_VALUES_SMALL,
    MAIN_MECHANISMS,
    TRAJECTORY_D_VALUES,
    TRAJECTORY_EPSILON_VALUES,
    ExperimentConfig,
    laptop_config,
    laptop_trajectory_config,
    paper_config,
    paper_trajectory_config,
    smoke_config,
)


class TestTableIV:
    def test_b_scales_match_paper(self):
        assert B_SCALE_VALUES == (0.33, 0.67, 1.0, 1.33, 1.67)

    def test_d_values_match_paper(self):
        assert D_VALUES_ALL == (1, 2, 3, 4, 5, 10, 15, 20)
        assert D_VALUES_SMALL == (1, 2, 3, 4, 5)
        assert D_VALUES_LARGE == (1, 5, 10, 15, 20)

    def test_epsilon_values_match_paper(self):
        assert EPSILON_VALUES_ALL == (0.7, 1.4, 2.1, 2.8, 3.5, 5.0, 6.0, 7.0, 8.0, 9.0)
        assert EPSILON_VALUES_SMALL == (0.7, 1.4, 2.1, 2.8, 3.5)
        assert EPSILON_VALUES_LARGE == (5.0, 6.0, 7.0, 8.0, 9.0)

    def test_defaults_match_paper(self):
        assert DEFAULT_D == 15
        assert DEFAULT_EPSILON == 3.5

    def test_main_mechanism_list(self):
        assert set(MAIN_MECHANISMS) == {"SEM-Geo-I", "MDSW", "HUEM", "DAM-NS", "DAM"}


class TestTableV:
    def test_trajectory_grids_match_paper(self):
        assert TRAJECTORY_D_VALUES == (1, 5, 10, 15, 20)
        assert TRAJECTORY_EPSILON_VALUES == (0.5, 1.0, 1.5, 2.0, 2.5)

    def test_paper_trajectory_defaults(self):
        config = paper_trajectory_config()
        assert config.n_trajectories == 1000
        assert config.min_length == 2
        assert config.max_length == 200
        assert config.routing_d == 300
        assert config.default_d == 15
        assert config.default_epsilon == 1.5


class TestPresets:
    def test_paper_config_full_scale(self):
        config = paper_config()
        assert config.dataset_scale == 1.0
        assert config.n_repeats == 10

    def test_laptop_config_is_smaller(self):
        laptop, paper = laptop_config(), paper_config()
        assert laptop.dataset_scale < paper.dataset_scale
        assert laptop.n_repeats < paper.n_repeats

    def test_smoke_config_is_smallest(self):
        assert smoke_config().dataset_scale <= laptop_config().dataset_scale

    def test_laptop_trajectory_config_is_smaller(self):
        laptop, paper = laptop_trajectory_config(), paper_trajectory_config()
        assert laptop.n_trajectories < paper.n_trajectories
        assert laptop.routing_d < paper.routing_d

    def test_with_overrides(self):
        config = laptop_config().with_overrides(default_d=7, n_repeats=1)
        assert config.default_d == 7
        assert config.n_repeats == 1
        # The original is unchanged (frozen dataclass semantics).
        assert laptop_config().default_d == 15

    def test_config_is_hashable_and_frozen(self):
        config = ExperimentConfig()
        with pytest.raises(AttributeError):
            config.default_d = 3  # type: ignore[misc]
