"""Tests for repro.experiments.cache and the runner's parallel/cached execution."""

from __future__ import annotations

import pytest

from repro.datasets.loader import load_dataset
from repro.experiments.cache import ResultCache, cache_key
from repro.experiments.config import smoke_config
from repro.experiments.runner import (
    evaluate_on_dataset,
    plan_sweep,
    sweep_parameter,
)


class TestCacheKey:
    def test_stable(self):
        payload = {"a": 1, "b": [1.5, None], "c": "x"}
        assert cache_key(payload) == cache_key(dict(reversed(payload.items())))

    def test_distinct_for_different_payloads(self):
        assert cache_key({"a": 1}) != cache_key({"a": 2})
        assert cache_key({"a": 1}) != cache_key({"b": 1})

    def test_float_int_distinction_is_canonical(self):
        # Equal floats digest equally regardless of construction.
        assert cache_key({"eps": 0.1 + 0.2}) == cache_key({"eps": 0.30000000000000004})


class TestResultCache:
    def test_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache_key({"q": 1})
        assert cache.get(key) is None
        cache.put(key, {"value": 3.5})
        assert cache.get(key) == {"value": 3.5}
        assert cache.hits == 1
        assert cache.misses == 1

    def test_disabled_cache_always_misses(self):
        cache = ResultCache(None)
        assert not cache.enabled
        cache.put("abcd", {"value": 1})
        assert cache.get("abcd") is None
        assert cache.misses == 1

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache_key({"q": 2})
        cache.put(key, {"value": 1})
        path = cache._path(key)
        path.write_text("{not json")
        assert cache.get(key) is None

    def test_persists_across_instances(self, tmp_path):
        key = cache_key({"q": 3})
        ResultCache(tmp_path).put(key, {"value": 9})
        assert ResultCache(tmp_path).get(key) == {"value": 9}


@pytest.fixture(scope="module")
def tiny_config():
    return smoke_config().with_overrides(datasets=("SZipf",))


class TestSweepExecution:
    def test_plan_matches_serial_order(self, tiny_config):
        cells = plan_sweep("d", (2, 3), ("DAM", "MDSW"), tiny_config, datasets=("SZipf",))
        assert [(c.parameter_value, c.mechanism) for c in cells] == [
            (2.0, "DAM"),
            (2.0, "MDSW"),
            (3.0, "DAM"),
            (3.0, "MDSW"),
        ]
        assert all(c.dataset == "SZipf" for c in cells)

    def test_parallel_sweep_matches_serial(self, tiny_config):
        serial = sweep_parameter("s", "d", (2, 3), ("DAM",), tiny_config, datasets=("SZipf",))
        parallel = sweep_parameter(
            "s", "d", (2, 3), ("DAM",), tiny_config, datasets=("SZipf",), workers=2
        )
        assert serial.points == parallel.points
        assert [p.w2_mean for p in serial.points] == [p.w2_mean for p in parallel.points]

    def test_warm_rerun_is_identical_and_all_hits(self, tiny_config, tmp_path):
        cache = ResultCache(tmp_path)
        cold = sweep_parameter(
            "s",
            "d",
            (2, 3),
            ("DAM", "MDSW"),
            tiny_config,
            datasets=("SZipf",),
            cache=cache,
        )
        assert cache.misses == 4 and cache.hits == 0
        warm = sweep_parameter(
            "s",
            "d",
            (2, 3),
            ("DAM", "MDSW"),
            tiny_config,
            datasets=("SZipf",),
            cache=cache,
        )
        assert cache.hits == 4
        assert warm.points == cold.points
        assert [p.w2_mean for p in warm.points] == [p.w2_mean for p in cold.points]
        assert [p.details for p in warm.points] == [p.details for p in cold.points]

    def test_cache_shared_between_worker_counts(self, tiny_config, tmp_path):
        cache = ResultCache(tmp_path)
        cold = sweep_parameter(
            "s",
            "d",
            (2,),
            ("DAM",),
            tiny_config,
            datasets=("SZipf",),
            cache=cache,
            workers=2,
        )
        warm = sweep_parameter(
            "s",
            "d",
            (2,),
            ("DAM",),
            tiny_config,
            datasets=("SZipf",),
            cache=cache,
            workers=1,
        )
        assert cache.hits == 1
        assert warm.points == cold.points

    def test_config_change_invalidates(self, tiny_config, tmp_path):
        cache = ResultCache(tmp_path)
        sweep_parameter("s", "d", (2,), ("DAM",), tiny_config, datasets=("SZipf",), cache=cache)
        bumped = tiny_config.with_overrides(seed=tiny_config.seed + 1)
        sweep_parameter("s", "d", (2,), ("DAM",), bumped, datasets=("SZipf",), cache=cache)
        assert cache.hits == 0 and cache.misses == 2

    @pytest.mark.parametrize("workers", [1, 2])
    def test_interrupted_sweep_resumes_from_completed_cells(
        self, tiny_config, tmp_path, workers
    ):
        """Cells cached before a failure must survive it (incremental resume)."""
        cache = ResultCache(tmp_path / str(workers))
        with pytest.raises(ValueError):
            sweep_parameter(
                "s",
                "d",
                (2,),
                ("DAM", "NoSuchMechanism"),
                tiny_config,
                datasets=("SZipf",),
                cache=cache,
                workers=workers,
            )
        resumed = ResultCache(tmp_path / str(workers))
        result = sweep_parameter(
            "s",
            "d",
            (2,),
            ("DAM",),
            tiny_config,
            datasets=("SZipf",),
            cache=resumed,
            workers=workers,
        )
        assert resumed.hits == 1 and resumed.misses == 0
        assert result.points[0].mechanism == "DAM"

    def test_config_cache_dir_enables_cache(self, tiny_config, tmp_path):
        config = tiny_config.with_overrides(cache_dir=str(tmp_path))
        sweep_parameter("s", "d", (2,), ("DAM",), config, datasets=("SZipf",))
        assert any(tmp_path.rglob("*.json"))


class TestEvaluateOnDatasetWorkers:
    def test_parallel_repeats_match_serial(self, tiny_config):
        config = tiny_config.with_overrides(n_repeats=3)
        dataset = load_dataset("SZipf", scale=config.dataset_scale, seed=config.seed)
        serial = evaluate_on_dataset("DAM", dataset, 4, 3.5, config, seed=1)
        parallel = evaluate_on_dataset("DAM", dataset, 4, 3.5, config, seed=1, workers=2)
        assert serial == parallel
