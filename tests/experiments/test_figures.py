"""Tests for repro.experiments.figures — per-figure entry points (smoke-sized runs)."""

from __future__ import annotations

import pytest

from repro.experiments.config import laptop_trajectory_config, smoke_config
from repro.experiments.figures import (
    figure8_radius_sweep,
    figure9_small_d,
    figure13_full_domain,
    figure14_trajectory,
    table3_dataset_statistics,
)


@pytest.fixture(scope="module")
def tiny_config():
    # Two datasets and one repeat keep these structural tests fast.
    return smoke_config().with_overrides(datasets=("SZipf", "Normal"), default_d=4)


class TestTable3:
    def test_rows_cover_both_datasets(self):
        rows = table3_dataset_statistics(smoke_config())
        assert len(rows) == 6
        assert {row.dataset for row in rows} == {"Crime", "NYC"}

    def test_paper_counts_recorded(self):
        rows = table3_dataset_statistics(smoke_config())
        assert sum(row.paper_points for row in rows if row.dataset == "Crime") == 459_215


class TestFigure8:
    def test_sweep_covers_all_b_scales(self, tiny_config):
        result = figure8_radius_sweep(tiny_config)
        values = sorted({p.parameter_value for p in result.points})
        assert values == [0.33, 0.67, 1.0, 1.33, 1.67]

    def test_only_dam_is_swept(self, tiny_config):
        result = figure8_radius_sweep(tiny_config)
        assert result.mechanisms() == ["DAM"]


class TestFigure9:
    def test_small_d_includes_all_mechanisms(self, tiny_config):
        config = tiny_config.with_overrides(datasets=("SZipf",))
        result = figure9_small_d(config)
        assert set(result.mechanisms()) == {"SEM-Geo-I", "MDSW", "HUEM", "DAM-NS", "DAM"}
        assert sorted({p.parameter_value for p in result.points}) == [1, 2, 3, 4, 5]


class TestFigure13:
    def test_full_domain_uses_crime_only(self):
        config = smoke_config().with_overrides(default_d=3)
        results = figure13_full_domain(config)
        assert set(results) == {"small_d", "large_d", "small_epsilon", "large_epsilon"}
        assert results["small_d"].datasets() == ["Crime"]


class TestFigure14:
    def test_trajectory_sweep_structure(self):
        config = laptop_trajectory_config().with_overrides(
            n_trajectories=20,
            max_length=12,
            routing_d=20,
            default_d=4,
            n_repeats=1,
            dataset_scale=0.01,
        )
        results = figure14_trajectory(config, sweep="epsilon")
        assert set(results) == {"epsilon"}
        sweep = results["epsilon"]
        for mechanism in ("LDPTrace", "PivotTrace", "DAM"):
            series = sweep.series(mechanism)
            assert [x for x, _ in series] == [0.5, 1.0, 1.5, 2.0, 2.5]

    def test_invalid_sweep_rejected(self):
        with pytest.raises(ValueError):
            figure14_trajectory(laptop_trajectory_config(), sweep="both-ways")
