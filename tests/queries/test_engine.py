"""Tests for repro.queries.engine — the summed-area-table serving subsystem.

The load-bearing property is SAT/dense equivalence: the O(1) summed-area-table path
must reproduce the seed O(d^2) ``_cell_overlap_fractions`` summation to 1e-10 for
arbitrary grids, domains and query rectangles (interior, overhanging, outside,
sliver-thin).  On top of that the façade operations (point density, top-k, marginals,
quantile contours) and the persistable replay driver are pinned down.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings

import strategies
from repro.core.dam import DiscreteDAM
from repro.core.domain import GridDistribution, GridSpec, SpatialDomain
from repro.queries import QuerySurface
from repro.queries.engine import (
    QueryEngine,
    QueryLog,
    StreamingQueryEngine,
    StreamingTrajectoryQueryEngine,
    SummedAreaTable,
    TrajectoryQueryEngine,
    WorkloadReplay,
    queries_to_array,
)
from repro.queries.range_query import (
    FlatRangeQueryEngine,
    HierarchicalRangeQueryEngine,
    RangeQuery,
    RangeQueryWorkload,
    dense_range_answer,
)

SLOW_SETTINGS = settings(
    max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

# Domains for the 1e-10 equivalence property: moderate offsets and extents, so the
# comparison measures algorithmic agreement rather than ulp-cancellation at
# planet-scale coordinates (those extremes are covered by the boundary properties in
# tests/core/test_domain.py, with appropriately scaled tolerances).
_EQUIV_DOMAINS = strategies.domains(offsets=(0.0, 1.0, 1e3), min_extent=0.1, max_extent=100.0)
_EQUIV_DISTRIBUTIONS = strategies.grid_distributions(
    min_side=1, max_side=12, domain_strategy=_EQUIV_DOMAINS
)


class TestSATEquivalence:
    """The acceptance property: SAT answers == dense overlap answers (<= 1e-10)."""

    @given(_EQUIV_DISTRIBUTIONS, strategies.seeds())
    @SLOW_SETTINGS
    def test_answer_batch_matches_dense_summation(self, estimate, seed):
        rng = np.random.default_rng(seed)
        sat = SummedAreaTable(estimate)
        domain = estimate.grid.domain
        n = int(rng.integers(1, 48))
        lo = domain.denormalise(rng.uniform(-0.75, 1.75, size=(n, 2)))
        extents = rng.uniform(1e-9, 1.2, size=(n, 2)) * [domain.width, domain.height]
        hi = np.maximum(lo + extents, np.nextafter(lo, np.inf))
        batch = np.column_stack([lo[:, 0], hi[:, 0], lo[:, 1], hi[:, 1]])
        answers = sat.answer_batch(batch)
        dense = np.array(
            [
                dense_range_answer(estimate, RangeQuery(x_lo, x_hi, y_lo, y_hi))
                for x_lo, x_hi, y_lo, y_hi in batch
            ]
        )
        np.testing.assert_allclose(answers, dense, atol=1e-10, rtol=0)

    @given(_EQUIV_DISTRIBUTIONS)
    @SLOW_SETTINGS
    def test_single_query_matches_dense(self, estimate):
        query = RangeQuery(
            estimate.grid.domain.x_min + 0.3 * estimate.grid.domain.width,
            estimate.grid.domain.x_min + 0.77 * estimate.grid.domain.width,
            estimate.grid.domain.y_min + 0.11 * estimate.grid.domain.height,
            estimate.grid.domain.y_min + 0.64 * estimate.grid.domain.height,
        )
        assert SummedAreaTable(estimate).answer(query) == pytest.approx(
            dense_range_answer(estimate, query), abs=1e-12
        )

    @given(_EQUIV_DISTRIBUTIONS)
    @SLOW_SETTINGS
    def test_full_domain_is_one_and_outside_is_zero(self, estimate):
        domain = estimate.grid.domain
        sat = SummedAreaTable(estimate)
        full = RangeQuery(
            domain.x_min - domain.width,
            domain.x_max + domain.width,
            domain.y_min - domain.height,
            domain.y_max + domain.height,
        )
        outside = RangeQuery(
            domain.x_max + domain.width,
            domain.x_max + 2 * domain.width,
            domain.y_min,
            domain.y_max,
        )
        assert sat.answer(full) == pytest.approx(1.0, abs=1e-12)
        assert sat.answer(outside) == pytest.approx(0.0, abs=1e-12)

    @given(strategies.grid_distributions(min_side=1, max_side=10, unit=True), strategies.seeds())
    @SLOW_SETTINGS
    def test_cumulative_monotone_and_bounded(self, estimate, seed):
        rng = np.random.default_rng(seed)
        sat = SummedAreaTable(estimate)
        xs = np.sort(rng.random(10))
        ys = np.full(10, rng.random())
        values = sat.cumulative_at(xs, ys)
        assert np.all(np.diff(values) >= -1e-12)
        assert np.all((values >= -1e-12) & (values <= 1.0 + 1e-12))


class TestQuerySurface:
    """``answer_batch`` must equal stacked ``answer`` for every engine."""

    @pytest.fixture(scope="class")
    def points(self):
        rng = np.random.default_rng(5)
        return np.clip(rng.normal([0.4, 0.6], 0.12, size=(4000, 2)), 0, 1)

    @pytest.fixture(scope="class")
    def workload(self):
        return RangeQueryWorkload.random(SpatialDomain.unit(), 25, seed=6)

    def test_flat_engine(self, points, workload):
        estimate = GridSpec.unit(9).distribution(points)
        engine = FlatRangeQueryEngine(estimate)
        stacked = np.array([engine.answer(q) for q in workload.queries])
        np.testing.assert_allclose(engine.answer_batch(workload.queries), stacked, atol=1e-12)
        np.testing.assert_allclose(engine.answer_batch(workload.as_array()), stacked, atol=1e-12)

    def test_hierarchical_engine(self, points, workload):
        engine = HierarchicalRangeQueryEngine(
            SpatialDomain.unit(),
            3.0,
            levels=3,
        ).fit(points, seed=7)
        stacked = np.array([engine.answer(q) for q in workload.queries])
        np.testing.assert_allclose(engine.answer_batch(workload.queries), stacked, atol=1e-12)

    def test_query_engine(self, points, workload):
        estimate = GridSpec.unit(9).distribution(points)
        engine = QueryEngine(estimate)
        stacked = np.array([engine.sat.answer(q) for q in workload.queries])
        np.testing.assert_allclose(engine.range_mass(workload.as_array()), stacked, atol=1e-12)
        np.testing.assert_allclose(engine.answer_batch(workload.as_array()), stacked, atol=1e-12)

    def test_every_engine_conforms(self, points, workload):
        estimate = GridSpec.unit(9).distribution(points)
        streaming = StreamingQueryEngine(estimate)
        engines = [
            FlatRangeQueryEngine(estimate),
            HierarchicalRangeQueryEngine(SpatialDomain.unit(), 3.0).fit(points, seed=8),
            QueryEngine(estimate),
            streaming,
        ]
        for engine in engines:
            assert isinstance(engine, QuerySurface)
            assert engine.answer_batch(workload.as_array()).shape == (25,)

    def test_answer_many_deprecated_alias(self, points, workload):
        estimate = GridSpec.unit(9).distribution(points)
        for engine in (
            FlatRangeQueryEngine(estimate),
            HierarchicalRangeQueryEngine(SpatialDomain.unit(), 3.0).fit(points, seed=9),
        ):
            expected = engine.answer_batch(workload.queries)
            with pytest.warns(DeprecationWarning, match="answer_batch"):
                aliased = engine.answer_many(workload.queries)  # repro-lint: disable=query-surface
            np.testing.assert_array_equal(aliased, expected)


class TestQueriesToArray:
    def test_single_query(self):
        arr = queries_to_array(RangeQuery(0.1, 0.4, 0.2, 0.9))
        np.testing.assert_allclose(arr, [[0.1, 0.4, 0.2, 0.9]])

    def test_sequence_and_array_agree(self):
        queries = [RangeQuery(0, 0.5, 0, 0.5), RangeQuery(0.2, 0.9, 0.1, 0.3)]
        arr = queries_to_array(queries)
        assert arr.shape == (2, 4)
        np.testing.assert_allclose(queries_to_array(arr), arr)

    def test_empty_sequence(self):
        assert queries_to_array([]).shape == (0, 4)

    def test_bad_shape_rejected(self):
        with pytest.raises(ValueError):
            queries_to_array(np.zeros((3, 5)))


class TestQueryEngineFacade:
    @pytest.fixture(scope="class")
    def engine(self):
        rng = np.random.default_rng(0)
        pts = np.clip(rng.normal([0.25, 0.25], 0.1, size=(8000, 2)), 0, 1)
        grid = GridSpec.unit(12)
        return QueryEngine(grid.distribution(pts))

    def test_point_density_integrates_to_cell_mass(self, engine):
        centers = engine.grid.cell_centers()
        cell_area = engine.grid.cell_width * engine.grid.cell_height
        densities = engine.point_density(centers)
        np.testing.assert_allclose(densities * cell_area, engine.estimate.flat(), atol=1e-12)

    def test_point_density_outside_domain_is_zero(self, engine):
        assert engine.point_density(np.array([[2.0, 2.0], [-1.0, 0.5]])).tolist() == [0, 0]

    def test_top_k_sorted_and_consistent(self, engine):
        top = engine.top_k_cells(7)
        assert np.all(np.diff(top.masses) <= 1e-15)
        flat = engine.estimate.flat()
        np.testing.assert_allclose(flat[top.flat_indices], top.masses)
        assert top.masses[0] == pytest.approx(flat.max())

    def test_top_k_bounds_checked(self, engine):
        with pytest.raises(ValueError):
            engine.top_k_cells(0)
        with pytest.raises(ValueError):
            engine.top_k_cells(engine.grid.n_cells + 1)

    def test_marginals_sum_to_one(self, engine):
        x_marg, y_marg = engine.axis_marginals()
        assert x_marg.sum() == pytest.approx(1.0)
        assert y_marg.sum() == pytest.approx(1.0)

    def test_quantile_contours_nested_and_sufficient(self, engine):
        low, high = engine.quantile_contours([0.5, 0.9])
        assert low.covered_mass >= 0.5 and high.covered_mass >= 0.9
        assert low.n_cells <= high.n_cells
        # The 50% contour is contained in the 90% contour (highest-density nesting).
        assert np.all(high.mask[low.mask])
        # Minimality: dropping the lightest included cell dips below the level.
        assert low.covered_mass - low.threshold < 0.5

    def test_quantile_level_validated(self, engine):
        with pytest.raises(ValueError):
            engine.quantile_contours([0.0])
        with pytest.raises(ValueError):
            engine.quantile_contours([1.5])

    def test_range_mass_matches_private_estimate(self, engine):
        query = RangeQuery(0.0, 0.5, 0.0, 0.5)
        assert engine.range_mass(query)[0] == pytest.approx(
            dense_range_answer(engine.estimate, query), abs=1e-12
        )


class TestQueryLogAndReplay:
    def test_random_log_shapes(self):
        log = QueryLog.random(
            SpatialDomain.unit(),
            n_range=40,
            n_density=10,
            n_top_k=3,
            n_quantiles=2,
            n_marginals=1,
            seed=0,
        )
        assert log.range_queries.shape == (40, 4)
        assert log.density_points.shape == (10, 2)
        assert log.size == 56
        # Generated rectangles stay inside the domain and non-degenerate.
        assert np.all(log.range_queries[:, 0] < log.range_queries[:, 1])
        assert np.all(log.range_queries[:, 2] < log.range_queries[:, 3])
        assert log.range_queries[:, [0, 2]].min() >= 0.0
        assert log.range_queries[:, [1, 3]].max() <= 1.0

    def test_save_load_roundtrip(self, tmp_path):
        log = QueryLog.random(
            SpatialDomain.unit(),
            n_range=12,
            n_density=4,
            n_top_k=2,
            n_quantiles=1,
            n_marginals=2,
            seed=1,
        )
        path = tmp_path / "workload.npz"
        log.save(path)
        loaded = QueryLog.load(path)
        np.testing.assert_allclose(loaded.range_queries, log.range_queries)
        np.testing.assert_allclose(loaded.density_points, log.density_points)
        np.testing.assert_array_equal(loaded.top_k, log.top_k)
        np.testing.assert_allclose(loaded.quantile_levels, log.quantile_levels)
        assert loaded.n_marginal_requests == log.n_marginal_requests

    def test_replay_reports_every_kind(self):
        rng = np.random.default_rng(2)
        engine = QueryEngine(
            GridSpec.unit(8).distribution(rng.random((3000, 2)))
        )
        log = QueryLog.random(
            SpatialDomain.unit(),
            n_range=100,
            n_density=50,
            n_top_k=2,
            n_quantiles=2,
            n_marginals=1,
            seed=3,
        )
        report, answers = WorkloadReplay(engine).replay(log)
        assert report.n_operations == log.size
        # Density answers are keyed "point_density" since 1.7 (they used to be
        # reported under the mismatched kind "density").
        assert set(report.per_kind) == {
            "range_mass",
            "point_density",
            "top_k",
            "quantiles",
            "marginals",
        }
        assert set(answers) == set(report.per_kind)
        assert answers["range_mass"].shape == (100,)
        assert report.operations_per_second > 0
        assert "ops/sec" in report.format()

    def test_replay_reports_latency_percentiles(self):
        rng = np.random.default_rng(6)
        engine = QueryEngine(GridSpec.unit(8).distribution(rng.random((2000, 2))))
        log = QueryLog.random(
            SpatialDomain.unit(), n_range=200, n_density=64, n_top_k=3, seed=7
        )
        report, _ = WorkloadReplay(engine).replay(log)
        for kind, stats in report.per_kind.items():
            assert stats["latency_p50"] >= 0, kind
            assert stats["latency_p99"] >= stats["latency_p50"], kind
        # Batched kinds are timed in sliced dispatches, so the percentiles are
        # per-slice, not one number smeared over the whole batch.
        assert "p50 ms" in report.format() and "p99 ms" in report.format()

    def test_sliced_batches_match_unsliced_answers(self):
        """Latency slicing must not change a single bit of the answers."""
        rng = np.random.default_rng(11)
        engine = QueryEngine(GridSpec.unit(9).distribution(rng.random((2500, 2))))
        log = QueryLog.random(SpatialDomain.unit(), n_range=137, n_density=41, seed=12)
        _, answers = WorkloadReplay(engine).replay(log)
        np.testing.assert_array_equal(
            answers["range_mass"], engine.range_mass(log.range_queries)
        )
        np.testing.assert_array_equal(
            answers["point_density"], engine.point_density(log.density_points)
        )

    def test_replay_empty_log(self):
        engine = QueryEngine(GridDistribution.uniform(GridSpec.unit(4)))
        report, answers = WorkloadReplay(engine).replay(QueryLog())
        assert report.n_operations == 0
        assert answers == {}

    def test_replay_workers_match_serial(self):
        rng = np.random.default_rng(4)
        engine = QueryEngine(GridSpec.unit(10).distribution(rng.random((2000, 2))))
        log = QueryLog.random(SpatialDomain.unit(), n_range=600, seed=5)
        _, serial = WorkloadReplay(engine).replay(log)
        with WorkloadReplay(engine, workers=2, chunk_size=100) as replay:
            _, fanned = replay.replay(log)
        np.testing.assert_allclose(fanned["range_mass"], serial["range_mass"])

    def test_parallel_pool_is_warm_before_the_timed_section(self):
        """The worker pool spins up outside the measurement, not inside it.

        Pre-1.7 ``_range_mass`` created a fresh ``ProcessPoolExecutor`` inside
        the timed section, so 'parallel replay throughput' mostly measured
        process startup.  The pool is now persistent: warmed (spawned + engine
        shipped + readiness round-trip) before any clock starts, and reused
        across replays.
        """
        rng = np.random.default_rng(13)
        engine = QueryEngine(GridSpec.unit(8).distribution(rng.random((1500, 2))))
        log = QueryLog.random(SpatialDomain.unit(), n_range=400, seed=14)
        with WorkloadReplay(engine, workers=2, chunk_size=100) as replay:
            assert not replay.pool_warm
            report, _ = replay.replay(log)
            assert replay.pool_warm  # warmed by replay(), before timing
            assert report.per_kind["range_mass"]["ops_per_second"] > 0
            # A second replay reuses the warm pool.
            replay.replay(log)
            assert replay.pool_warm
        assert not replay.pool_warm  # close() tore it down

    def test_replay_parameters_validated(self):
        engine = QueryEngine(GridDistribution.uniform(GridSpec.unit(4)))
        with pytest.raises(ValueError):
            WorkloadReplay(engine, workers=0)
        with pytest.raises(ValueError):
            WorkloadReplay(engine, chunk_size=0)


class TestCumulativeAccessor:
    def test_cached_and_consistent(self):
        rng = np.random.default_rng(8)
        dist = GridDistribution(GridSpec.unit(6), rng.dirichlet(np.ones(36)).reshape(6, 6))
        table = dist.cumulative()
        assert table is dist.cumulative()  # cached
        assert table.shape == (7, 7)
        assert table[0].tolist() == [0.0] * 7
        assert table[-1, -1] == pytest.approx(1.0)
        np.testing.assert_allclose(
            np.diff(np.diff(table, axis=0), axis=1), dist.probabilities, atol=1e-12
        )

    def test_private_estimate_serving_path(self):
        rng = np.random.default_rng(9)
        pts = np.clip(rng.normal([0.3, 0.7], 0.1, size=(3000, 2)), 0, 1)
        grid = GridSpec.unit(8)
        estimate = DiscreteDAM(grid, 4.0).run(pts, seed=0).estimate
        engine = QueryEngine(estimate)
        answers = engine.range_mass(np.array([[0.0, 1.0, 0.0, 1.0]]))
        assert answers[0] == pytest.approx(1.0, abs=1e-9)


class TestTrajectoryQueryEngine:
    """Sequence-aware serving: OD/transition top-k and length histograms."""

    @pytest.fixture
    def tiny_trajectories(self):
        # Hand-built on a 2x2 unit grid: cells are row*2+col.
        # T1: (0,0) -> (0,1) -> (1,1)  [cells 0, 1, 3]
        # T2: (0,0) -> (0,1)           [cells 0, 1]
        # T3: single point in cell 3
        return [
            np.array([[0.25, 0.25], [0.75, 0.25], [0.75, 0.75]]),
            np.array([[0.25, 0.25], [0.75, 0.25]]),
            np.array([[0.75, 0.75]]),
        ]

    @pytest.fixture
    def serving(self, tiny_trajectories):
        return TrajectoryQueryEngine(tiny_trajectories, GridSpec.unit(2))

    def test_point_mass_is_the_cell_distribution(self, serving):
        # 6 points: cells [0,1,3, 0,1, 3] -> masses (2, 2, 0, 2)/6.
        np.testing.assert_allclose(serving.estimate.flat(), np.array([2, 2, 0, 2]) / 6.0)

    def test_od_top_k_counts(self, serving):
        od = serving.od_top_k(4)
        # OD pairs: (0 -> 3), (0 -> 1), (3 -> 3); all counts 1.
        assert od.counts.sum() == 3
        pairs = set(zip(od.from_cells.tolist(), od.to_cells.tolist()))
        assert pairs == {(0, 3), (0, 1), (3, 3)}
        np.testing.assert_allclose(od.fractions.sum(), 1.0)

    def test_transition_top_k_counts(self, serving):
        transitions = serving.transition_top_k(10)
        # Steps: 0->1 (twice), 1->3 (once).
        lookup = {
            (f, t): c
            for f, t, c in zip(
                transitions.from_cells.tolist(),
                transitions.to_cells.tolist(),
                transitions.counts.tolist(),
            )
        }
        assert lookup == {(0, 1): 2.0, (1, 3): 1.0}
        assert transitions.counts[0] == 2.0  # sorted by decreasing count

    def test_length_histogram(self, serving):
        counts, edges = serving.length_histogram(bins=3)
        assert counts.sum() == 3
        assert edges[0] == 1 and edges[-1] == 3

    def test_inherits_point_serving(self, serving):
        mass = serving.range_mass(np.array([[0.0, 1.0, 0.0, 1.0]]))
        assert mass[0] == pytest.approx(1.0)
        assert serving.top_k_cells(1).masses[0] == pytest.approx(2 / 6)

    def test_validation(self, serving, tiny_trajectories):
        with pytest.raises(ValueError):
            TrajectoryQueryEngine([], GridSpec.unit(2))
        with pytest.raises(ValueError):
            TrajectoryQueryEngine([np.empty((0, 2))], GridSpec.unit(2))
        with pytest.raises(ValueError):
            serving.od_top_k(0)
        with pytest.raises(ValueError):
            serving.length_histogram(bins=0)

    def test_single_trajectory_has_no_interior_end_bug(self):
        # One trajectory: every consecutive step must count, none dropped.
        serving = TrajectoryQueryEngine(
            [np.array([[0.25, 0.25], [0.75, 0.25], [0.75, 0.75], [0.25, 0.75]])],
            GridSpec.unit(2),
        )
        assert serving.transition_top_k(10).counts.sum() == 3

    @given(strategies.trajectory_sets(), strategies.grid_sides(2, 8), strategies.seeds())
    @settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_pair_totals_consistent(self, trajectories, d, seed):
        domain = SpatialDomain.from_points(np.vstack(trajectories), relative_pad=0.05)
        serving = TrajectoryQueryEngine(trajectories, GridSpec(domain, d))
        od = serving.od_top_k(10**9)  # clipped to all pairs
        transitions = serving.transition_top_k(10**9)
        assert od.counts.sum() == len(trajectories)
        n_steps = sum(max(np.shape(t)[0] - 1, 0) for t in trajectories)
        assert transitions.counts.sum() == n_steps


class TestTrajectoryWorkloadReplay:
    def _serving(self):
        rng = np.random.default_rng(3)
        trajectories = [
            np.clip(rng.normal(0.5, 0.2, size=(int(rng.integers(1, 12)), 2)), 0, 1)
            for _ in range(40)
        ]
        return TrajectoryQueryEngine(trajectories, GridSpec.unit(4))

    def test_replay_serves_trajectory_operations(self):
        serving = self._serving()
        log = QueryLog.random(
            serving.grid.domain,
            n_range=16,
            n_od_top_k=3,
            n_transition_top_k=3,
            n_length_histograms=2,
            seed=0,
        )
        report, answers = WorkloadReplay(serving).replay(log)
        assert report.n_operations == log.size
        assert len(answers["od_top_k"]) == 3
        assert len(answers["transition_top_k"]) == 3
        assert len(answers["length_histogram"]) == 2

    def test_point_engine_rejects_trajectory_log(self):
        estimate = GridDistribution.uniform(GridSpec.unit(4))
        log = QueryLog(od_top_k=np.array([3]))
        with pytest.raises(TypeError, match="TrajectoryQueryEngine"):
            WorkloadReplay(QueryEngine(estimate)).replay(log)

    def test_rejection_names_engine_class_and_log_op_kinds(self):
        """The error must say which engine failed AND which operations it cannot
        serve, so a mis-routed replay is diagnosable from the message alone."""
        estimate = GridDistribution.uniform(GridSpec.unit(4))
        log = QueryLog(
            od_top_k=np.array([3, 5]),
            length_histogram_bins=np.array([8]),
        )
        with pytest.raises(TypeError) as excinfo:
            WorkloadReplay(QueryEngine(estimate)).replay(log)
        message = str(excinfo.value)
        assert "QueryEngine" in message
        assert "od_top_k x2" in message
        assert "length_histogram x1" in message
        assert "transition_top_k" not in message  # zero-count kinds stay out

    def test_trajectory_operation_counts_property(self):
        log = QueryLog(od_top_k=np.array([3]), transition_top_k=np.array([2, 4]))
        assert log.trajectory_operation_counts == {"od_top_k": 1, "transition_top_k": 2}
        assert QueryLog().trajectory_operation_counts == {}

    def test_trajectory_log_roundtrip(self, tmp_path):
        log = QueryLog.random(
            SpatialDomain.unit(),
            n_range=4,
            n_od_top_k=2,
            n_transition_top_k=1,
            n_length_histograms=1,
            seed=5,
        )
        assert log.has_trajectory_operations
        path = tmp_path / "trajectory-log.npz"
        log.save(path)
        loaded = QueryLog.load(path)
        np.testing.assert_array_equal(loaded.od_top_k, log.od_top_k)
        np.testing.assert_array_equal(loaded.transition_top_k, log.transition_top_k)
        np.testing.assert_array_equal(loaded.length_histogram_bins, log.length_histogram_bins)
        assert loaded.size == log.size

class TestStreamingTrajectoryQueryEngine:
    def _trajectories(self, seed: int) -> list[np.ndarray]:
        rng = np.random.default_rng(seed)
        return [
            np.clip(rng.normal(0.5, 0.2, size=(int(rng.integers(1, 10)), 2)), 0, 1)
            for _ in range(30)
        ]

    def test_refresh_trajectories_publishes_atomically(self):
        serving = StreamingTrajectoryQueryEngine()
        with pytest.raises(RuntimeError, match="no estimate has been published"):
            serving.snapshot()
        first = serving.refresh_trajectories(self._trajectories(0), GridSpec.unit(4), epoch=0)
        assert serving.snapshot() is first
        assert serving.epoch == 0
        second = serving.refresh_trajectories(self._trajectories(1), GridSpec.unit(4), epoch=1)
        assert serving.snapshot() is second
        assert serving.epoch == 1
        # A pinned snapshot keeps answering on its window after a refresh.
        assert first.od_top_k(2).counts.sum() <= 30

    def test_delegated_trajectory_queries_match_snapshot(self):
        serving = StreamingTrajectoryQueryEngine()
        serving.refresh_trajectories(self._trajectories(2), GridSpec.unit(4), epoch=0)
        pinned = serving.snapshot()
        np.testing.assert_array_equal(serving.od_top_k(3).counts, pinned.od_top_k(3).counts)
        np.testing.assert_array_equal(
            serving.transition_top_k(3).counts, pinned.transition_top_k(3).counts
        )
        counts, edges = serving.length_histogram(bins=5)
        pinned_counts, pinned_edges = pinned.length_histogram(bins=5)
        np.testing.assert_array_equal(counts, pinned_counts)
        np.testing.assert_array_equal(edges, pinned_edges)

    def test_point_published_engine_is_rejected_for_trajectory_queries(self):
        serving = StreamingTrajectoryQueryEngine()
        serving.refresh(GridDistribution.uniform(GridSpec.unit(4)), epoch=0)
        with pytest.raises(RuntimeError, match="refresh_trajectories"):
            serving.od_top_k(2)

    def test_replay_runs_against_streaming_facade(self):
        serving = StreamingTrajectoryQueryEngine()
        serving.refresh_trajectories(self._trajectories(3), GridSpec.unit(4), epoch=0)
        log = QueryLog.random(
            SpatialDomain.unit(),
            n_range=4,
            n_od_top_k=2,
            n_transition_top_k=2,
            n_length_histograms=1,
            seed=7,
        )
        report, answers = WorkloadReplay(serving).replay(log)
        assert report.n_operations == log.size
        assert len(answers["od_top_k"]) == 2


class TestTrajectoryWorkloadReplayRoundtrips:
    def test_legacy_log_without_trajectory_fields_loads(self, tmp_path):
        """Archives written before the trajectory operations existed must load."""
        path = tmp_path / "legacy-log.npz"
        np.savez_compressed(
            path,
            range_queries=np.array([[0.1, 0.4, 0.1, 0.4]]),
            density_points=np.empty((0, 2)),
            top_k=np.empty(0, dtype=np.int64),
            quantile_levels=np.empty(0),
            n_marginal_requests=np.int64(0),
        )
        loaded = QueryLog.load(path)
        assert loaded.size == 1
        assert not loaded.has_trajectory_operations
