"""Tests for repro.queries.range_query."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.dam import DiscreteDAM
from repro.core.domain import GridDistribution, GridSpec, SpatialDomain
from repro.queries.range_query import (
    FlatRangeQueryEngine,
    HierarchicalRangeQueryEngine,
    RangeQuery,
    RangeQueryWorkload,
)


@pytest.fixture(scope="module")
def domain() -> SpatialDomain:
    return SpatialDomain.unit("rq")


@pytest.fixture(scope="module")
def points() -> np.ndarray:
    rng = np.random.default_rng(0)
    cluster = rng.normal([0.3, 0.3], 0.08, size=(6000, 2))
    background = rng.random((2000, 2))
    return np.clip(np.vstack([cluster, background]), 0, 1)


class TestRangeQuery:
    def test_true_answer_full_domain(self, points):
        assert RangeQuery(0, 1, 0, 1).true_answer(points) == pytest.approx(1.0)

    def test_true_answer_empty_region(self, points):
        assert RangeQuery(0.9, 0.99, 0.9, 0.99).true_answer(points) < 0.05

    def test_true_answer_no_points(self):
        assert RangeQuery(0, 1, 0, 1).true_answer(np.empty((0, 2))) == 0.0

    def test_degenerate_query_rejected(self):
        with pytest.raises(ValueError):
            RangeQuery(0.5, 0.5, 0.0, 1.0)

    def test_area_fraction(self, domain):
        assert RangeQuery(0.0, 0.5, 0.0, 0.5).area_fraction(domain) == pytest.approx(0.25)

    def test_area_fraction_clipped_to_domain(self, domain):
        assert RangeQuery(-1.0, 2.0, -1.0, 2.0).area_fraction(domain) == pytest.approx(1.0)

    def test_area_fraction_clips_low_side(self, domain):
        """A query overhanging x_min/y_min must only count its in-domain part."""
        assert RangeQuery(-0.5, 0.5, 0.0, 1.0).area_fraction(domain) == pytest.approx(0.5)
        assert RangeQuery(0.0, 1.0, -0.25, 0.25).area_fraction(domain) == pytest.approx(0.25)
        assert RangeQuery(-1.0, 0.5, -1.0, 0.5).area_fraction(domain) == pytest.approx(0.25)

    def test_area_fraction_outside_domain_is_zero(self, domain):
        assert RangeQuery(-2.0, -1.0, 0.0, 1.0).area_fraction(domain) == 0.0
        assert RangeQuery(0.0, 1.0, 1.5, 2.5).area_fraction(domain) == 0.0

    def test_area_fraction_non_unit_domain(self):
        domain = SpatialDomain(10.0, 30.0, 100.0, 120.0)
        assert RangeQuery(0.0, 20.0, 90.0, 110.0).area_fraction(domain) == pytest.approx(0.25)


class TestBoundaryConvention:
    """Regression tests for the documented boundary conventions.

    ``true_answer`` counts points on *closed* rectangles by default (a point exactly
    on a shared edge of two adjacent queries is double counted); ``closed="left"``
    switches to half-open intervals so tiling workloads count each point exactly
    once, with the domain's upper boundary staying inclusive.  Estimated answers use
    continuous area overlap, where edges are measure-zero.
    """

    def test_point_on_shared_edge_double_counted_by_default(self):
        pts = np.array([[0.5, 0.25]])
        left = RangeQuery(0.0, 0.5, 0.0, 1.0)
        right = RangeQuery(0.5, 1.0, 0.0, 1.0)
        assert left.true_answer(pts) == 1.0
        assert right.true_answer(pts) == 1.0  # counted by both: sums to 2

    def test_half_open_convention_counts_edge_point_once(self):
        pts = np.array([[0.5, 0.25]])
        left = RangeQuery(0.0, 0.5, 0.0, 1.0)
        right = RangeQuery(0.5, 1.0, 0.0, 1.0)
        assert left.true_answer(pts, closed="left") == 0.0
        assert right.true_answer(pts, closed="left") == 1.0

    def test_half_open_tiling_sums_to_exactly_one(self, domain):
        # Points deliberately placed on every kind of boundary: interior tile edges,
        # tile corners, and the domain's own upper boundary.
        pts = np.array([
            [0.5, 0.5],
            [0.25, 0.5],
            [0.5, 0.75],
            [1.0, 1.0],
            [1.0, 0.25],
            [0.3, 1.0],
            [0.0, 0.0],
            [0.7, 0.2],
        ])
        tiles = [
            RangeQuery(x0, x0 + 0.5, y0, y0 + 0.5)
            for x0 in (0.0, 0.5) for y0 in (0.0, 0.5)
        ]
        closed_total = sum(t.true_answer(pts) for t in tiles)
        half_open_total = sum(
            t.true_answer(pts, closed="left", domain=domain) for t in tiles
        )
        assert closed_total > 1.0  # shared edges double count under the default
        assert half_open_total == pytest.approx(1.0)

    def test_domain_upper_boundary_stays_inclusive_with_domain(self, domain):
        pts = np.array([[1.0, 0.5], [0.5, 1.0], [1.0, 1.0]])
        top_right = RangeQuery(0.5, 1.0, 0.5, 1.0)
        # Without the domain, [lo, hi) drops the points sitting exactly on x=1/y=1.
        assert top_right.true_answer(pts, closed="left") == 0.0
        assert top_right.true_answer(pts, closed="left", domain=domain) == pytest.approx(1.0)

    def test_invalid_convention_rejected(self):
        with pytest.raises(ValueError):
            RangeQuery(0, 1, 0, 1).true_answer(np.zeros((1, 2)), closed="open")

    def test_estimated_answer_splits_exactly_on_cell_edge(self, domain):
        # A query edge exactly on a cell boundary: continuous area overlap assigns
        # each adjacent query exactly its half — no double counting in estimates.
        grid = GridSpec(domain, 4)
        uniform = GridDistribution.uniform(grid)
        engine = FlatRangeQueryEngine(uniform)
        left = engine.answer(RangeQuery(0.0, 0.5, 0.0, 1.0))
        right = engine.answer(RangeQuery(0.5, 1.0, 0.0, 1.0))
        assert left == pytest.approx(0.5, abs=1e-12)
        assert left + right == pytest.approx(1.0, abs=1e-12)

    def test_true_answer_matches_area_for_edge_aligned_query(self):
        # Points exactly on the query's own boundary are included under the default
        # convention — the regression the audit asked for.
        pts = np.array([[0.2, 0.3], [0.2, 0.7], [0.6, 0.3], [0.6, 0.7]])
        query = RangeQuery(0.2, 0.6, 0.3, 0.7)
        assert query.true_answer(pts) == 1.0


class TestFlatEngine:
    def test_full_domain_query_sums_to_one(self, domain, points):
        grid = GridSpec(domain, 8)
        engine = FlatRangeQueryEngine(grid.distribution(points))
        assert engine.answer(RangeQuery(0, 1, 0, 1)) == pytest.approx(1.0)

    def test_exact_on_true_distribution_cell_aligned(self, domain, points):
        grid = GridSpec(domain, 4)
        engine = FlatRangeQueryEngine(grid.distribution(points))
        query = RangeQuery(0.0, 0.5, 0.0, 0.5)
        assert engine.answer(query) == pytest.approx(query.true_answer(points), abs=1e-9)

    def test_partial_cell_overlap_proportional(self, domain):
        grid = GridSpec(domain, 2)
        uniform = GridDistribution.uniform(grid)
        engine = FlatRangeQueryEngine(uniform)
        assert engine.answer(RangeQuery(0.0, 0.25, 0.0, 1.0)) == pytest.approx(0.25)

    def test_answer_batch_shape(self, domain, points):
        grid = GridSpec(domain, 4)
        engine = FlatRangeQueryEngine(grid.distribution(points))
        workload = RangeQueryWorkload.random(domain, 7, seed=0)
        assert engine.answer_batch(workload.queries).shape == (7,)

    def test_private_estimate_answers_track_truth(self, domain, points):
        grid = GridSpec(domain, 8)
        estimate = DiscreteDAM(grid, 5.0).run(points, seed=1).estimate
        engine = FlatRangeQueryEngine(estimate)
        workload = RangeQueryWorkload.random(domain, 15, seed=2)
        mae = workload.mean_absolute_error(engine.answer_batch(workload.queries), points)
        assert mae < 0.08


class TestHierarchicalEngine:
    def test_requires_fit(self, domain):
        engine = HierarchicalRangeQueryEngine(domain, 2.0)
        with pytest.raises(RuntimeError):
            engine.answer(RangeQuery(0, 1, 0, 1))

    def test_levels_get_finer(self, domain, points):
        engine = HierarchicalRangeQueryEngine(domain, 2.0, levels=3, base_d=2).fit(points, seed=0)
        sides = [level.grid.d for level in engine.levels]
        assert sides == [2, 4, 8]

    def test_users_split_across_levels(self, domain, points):
        engine = HierarchicalRangeQueryEngine(domain, 2.0, levels=3).fit(points, seed=1)
        counts = [level.n_users for level in engine.levels]
        assert sum(counts) == points.shape[0]
        assert min(counts) > 0

    def test_full_domain_query_close_to_one(self, domain, points):
        engine = HierarchicalRangeQueryEngine(domain, 3.0, levels=3).fit(points, seed=2)
        assert engine.answer(RangeQuery(0, 1, 0, 1)) == pytest.approx(1.0, abs=0.05)

    def test_answers_bounded(self, domain, points):
        engine = HierarchicalRangeQueryEngine(domain, 2.0, levels=3).fit(points, seed=3)
        workload = RangeQueryWorkload.random(domain, 10, seed=4)
        answers = engine.answer_batch(workload.queries)
        assert np.all(answers >= 0.0) and np.all(answers <= 1.0)

    def test_reasonable_accuracy(self, domain, points):
        engine = HierarchicalRangeQueryEngine(domain, 5.0, levels=3).fit(points, seed=5)
        workload = RangeQueryWorkload.random(domain, 12, min_fraction=0.3, max_fraction=0.7, seed=6)
        mae = workload.mean_absolute_error(engine.answer_batch(workload.queries), points)
        assert mae < 0.15

    def test_invalid_parameters_rejected(self, domain):
        with pytest.raises(ValueError):
            HierarchicalRangeQueryEngine(domain, 2.0, levels=0)
        with pytest.raises(ValueError):
            HierarchicalRangeQueryEngine(domain, 2.0, branching=1)

    def test_empty_points_gives_uniform_levels(self, domain):
        engine = HierarchicalRangeQueryEngine(domain, 2.0, levels=2).fit(np.empty((0, 2)), seed=0)
        assert engine.answer(RangeQuery(0, 0.5, 0, 1.0)) == pytest.approx(0.5, abs=0.1)


class TestWorkload:
    def test_random_workload_within_domain(self, domain):
        workload = RangeQueryWorkload.random(domain, 25, seed=0)
        assert len(workload.queries) == 25
        for query in workload.queries:
            assert domain.x_min <= query.x_lo < query.x_hi <= domain.x_max
            assert domain.y_min <= query.y_lo < query.y_hi <= domain.y_max

    def test_fraction_bounds_respected(self, domain):
        workload = RangeQueryWorkload.random(domain, 30, min_fraction=0.2, max_fraction=0.3, seed=1)
        for query in workload.queries:
            assert 0.19 <= (query.x_hi - query.x_lo) <= 0.31

    def test_invalid_parameters_rejected(self, domain):
        with pytest.raises(ValueError):
            RangeQueryWorkload.random(domain, -1)
        with pytest.raises(ValueError):
            RangeQueryWorkload.random(domain, 5, min_fraction=0.0)

    def test_error_metrics(self, domain, points):
        workload = RangeQueryWorkload.random(domain, 10, seed=2)
        truth = workload.true_answers(points)
        assert workload.mean_absolute_error(truth, points) == pytest.approx(0.0)
        assert workload.mean_relative_error(truth, points) == pytest.approx(0.0)

    def test_error_metric_shape_check(self, domain, points):
        workload = RangeQueryWorkload.random(domain, 10, seed=3)
        with pytest.raises(ValueError):
            workload.mean_absolute_error(np.zeros(5), points)
