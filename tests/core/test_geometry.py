"""Tests for repro.core.geometry — the shrinkage geometry and Theorems VI.1–VI.4."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.geometry import (
    CellClass,
    circle_cell_overlap_area,
    classify_offset,
    closed_form_high_low_areas,
    diagonal_shrunken_area,
    disk_high_low_areas,
    disk_offset_array,
    enumerate_disk_cells,
    nearest_corner_distance,
    octant_mixed_cell_count,
    octant_mixed_cell_indices,
    octant_pure_high_cell_count,
    output_domain_cell_count,
    output_domain_cells,
    pure_low_cell_count,
    shrunken_rectangle_area,
)

B_VALUES = list(range(1, 16))


class TestClassifyOffset:
    def test_center_is_pure_high(self):
        assert classify_offset(0, 0, 3) is CellClass.PURE_HIGH

    def test_cell_on_circle_is_pure_high(self):
        # centre distance exactly equals the radius
        assert classify_offset(3, 0, 3) is CellClass.PURE_HIGH

    def test_cell_far_away_is_pure_low(self):
        assert classify_offset(10, 10, 3) is CellClass.PURE_LOW

    def test_border_cell_is_mixed(self):
        # (2, 1) with b=2: centre sqrt(5) > 2, nearest corner ~1.58 < 2
        assert classify_offset(2, 1, 2) is CellClass.MIXED

    def test_axis_cells_never_mixed_for_integer_radius(self):
        for b in B_VALUES:
            for x in range(1, b + 3):
                assert classify_offset(x, 0, b) is not CellClass.MIXED

    def test_symmetry_under_reflection(self):
        for b in (2, 5, 7):
            for dx in range(-b - 1, b + 2):
                for dy in range(-b - 1, b + 2):
                    assert classify_offset(dx, dy, b) is classify_offset(abs(dx), abs(dy), b)
                    assert classify_offset(dx, dy, b) is classify_offset(dy, dx, b)

    def test_invalid_radius_rejected(self):
        with pytest.raises(ValueError):
            classify_offset(0, 0, 0)


class TestNearestCornerDistance:
    def test_origin_cell(self):
        assert nearest_corner_distance(0, 0) == 0.0

    def test_adjacent_cell(self):
        assert nearest_corner_distance(1, 0) == pytest.approx(0.5)

    def test_diagonal_cell(self):
        assert nearest_corner_distance(1, 1) == pytest.approx(math.sqrt(0.5))


class TestShrunkenRectangleArea:
    def test_matches_paper_b2_cell(self):
        # b=2, cell (2, 1): delta = 2/sqrt(5) - 1, S = 4(2*delta+0.5)(delta+0.5)
        delta = 2.0 / math.sqrt(5.0) - 1.0
        expected = 4.0 * (2 * delta + 0.5) * (delta + 0.5)
        assert shrunken_rectangle_area(2, 1, 2) == pytest.approx(expected)

    def test_clipped_to_unit_cell(self):
        for b in B_VALUES:
            for cell in enumerate_disk_cells(b):
                assert 0.0 <= cell.high_area <= 1.0

    def test_value_between_zero_and_one_for_mixed_cells(self):
        # The Theorem VI.1 approximation can reach 0 for cells the circle barely clips,
        # so the valid range is the closed interval.
        for b in (2, 3, 5, 8, 13):
            for cell in enumerate_disk_cells(b):
                if cell.cell_class is CellClass.MIXED:
                    assert 0.0 <= cell.high_area <= 1.0

    def test_origin_returns_full_cell(self):
        assert shrunken_rectangle_area(0, 0, 3) == 1.0

    def test_invalid_radius_rejected(self):
        with pytest.raises(ValueError):
            shrunken_rectangle_area(1, 1, 0)

    def test_approximates_exact_overlap(self):
        """The shrunken rectangle approximates the true circle-cell overlap area."""
        for b in (3, 5, 8):
            for cell in enumerate_disk_cells(b):
                if cell.cell_class is not CellClass.MIXED:
                    continue
                exact = circle_cell_overlap_area(cell.dx, cell.dy, b)
                assert abs(cell.high_area - exact) < 0.45  # coarse but bounded approximation


class TestDiagonalShrunkenArea:
    def test_b7_matches_theorem(self):
        # b=7: b' = 7/sqrt(2) - 0.5 ~ 4.4497, fractional part 0.4497 < 0.5
        b_prime = 7 / math.sqrt(2) - 0.5
        frac = b_prime - math.floor(b_prime)
        assert diagonal_shrunken_area(7) == pytest.approx(4 * frac * frac)

    def test_full_cell_when_fraction_large(self):
        # b=3: b' = 1.621, fraction 0.621 >= 0.5 -> whole cell
        assert diagonal_shrunken_area(3) == 1.0

    def test_bounded(self):
        for b in B_VALUES:
            assert 0.0 <= diagonal_shrunken_area(b) <= 1.0

    def test_invalid_radius_rejected(self):
        with pytest.raises(ValueError):
            diagonal_shrunken_area(0)


class TestCircleCellOverlap:
    def test_fully_inside(self):
        assert circle_cell_overlap_area(0, 0, 5) == 1.0

    def test_fully_outside(self):
        assert circle_cell_overlap_area(10, 10, 2) == 0.0

    def test_partial_overlap_between_zero_and_one(self):
        area = circle_cell_overlap_area(2, 1, 2)
        assert 0.0 < area < 1.0

    def test_whole_disk_area_recovered(self):
        """Summing overlaps over all cells recovers pi b^2 (within discretisation error)."""
        b = 4
        total = 0.0
        for dx in range(-b - 1, b + 2):
            for dy in range(-b - 1, b + 2):
                total += circle_cell_overlap_area(dx, dy, b)
        assert total == pytest.approx(math.pi * b * b, rel=0.01)


class TestEnumerateDiskCells:
    @pytest.mark.parametrize("b", B_VALUES)
    def test_contains_center(self, b):
        offsets = {(c.dx, c.dy) for c in enumerate_disk_cells(b)}
        assert (0, 0) in offsets

    @pytest.mark.parametrize("b", B_VALUES)
    def test_no_duplicates(self, b):
        cells = enumerate_disk_cells(b)
        assert len({(c.dx, c.dy) for c in cells}) == len(cells)

    @pytest.mark.parametrize("b", [1, 2, 5, 9])
    def test_all_within_bounding_box(self, b):
        for cell in enumerate_disk_cells(b):
            assert abs(cell.dx) <= b and abs(cell.dy) <= b

    def test_b1_shape(self):
        """b=1: centre + 4 axis neighbours pure high, 4 diagonal cells mixed."""
        cells = enumerate_disk_cells(1)
        pure = [c for c in cells if c.cell_class is CellClass.PURE_HIGH]
        mixed = [c for c in cells if c.cell_class is CellClass.MIXED]
        assert len(pure) == 5
        assert len(mixed) == 4

    def test_b2_counts_match_manual_enumeration(self):
        """b=2: 13 pure-high cells and 8 mixed cells (worked out by hand)."""
        cells = enumerate_disk_cells(2)
        assert sum(c.cell_class is CellClass.PURE_HIGH for c in cells) == 13
        assert sum(c.cell_class is CellClass.MIXED for c in cells) == 8

    def test_no_shrinkage_zeroes_mixed_areas(self):
        for cell in enumerate_disk_cells(4, use_shrinkage=False):
            if cell.cell_class is CellClass.MIXED:
                assert cell.high_area == 0.0
            else:
                assert cell.high_area == 1.0

    def test_shrinkage_only_affects_mixed_cells(self):
        with_s = {(c.dx, c.dy): c for c in enumerate_disk_cells(5, use_shrinkage=True)}
        without = {(c.dx, c.dy): c for c in enumerate_disk_cells(5, use_shrinkage=False)}
        assert set(with_s) == set(without)
        for key, cell in with_s.items():
            if cell.cell_class is CellClass.PURE_HIGH:
                assert without[key].high_area == cell.high_area == 1.0

    def test_invalid_radius_rejected(self):
        with pytest.raises(ValueError):
            enumerate_disk_cells(0)

    @pytest.mark.parametrize("b", B_VALUES)
    def test_disk_cell_count_grows_like_area(self, b):
        count = len(enumerate_disk_cells(b))
        assert math.pi * b * b * 0.8 <= count <= math.pi * (b + 1.5) ** 2


class TestTheoremVI2:
    """Pure-low cell count: closed form versus direct output-domain construction."""

    @pytest.mark.parametrize("b", [1, 2, 3, 5, 8])
    @pytest.mark.parametrize("d", [2, 3, 5, 10])
    def test_matches_output_domain(self, d, b):
        total = output_domain_cell_count(d, b)
        disk = len(enumerate_disk_cells(b))
        assert total - disk == pure_low_cell_count(d, b)

    def test_formula_value(self):
        assert pure_low_cell_count(10, 3) == 100 + 120 - 12 - 1

    def test_d1_gives_zero_extra(self):
        # With a single input cell the whole output domain is the disk neighbourhood.
        assert pure_low_cell_count(1, 4) == 1 + 16 - 16 - 1 == 0

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ValueError):
            pure_low_cell_count(0, 1)
        with pytest.raises(ValueError):
            pure_low_cell_count(3, 0)


def _strict_octant_cells(b: int, cell_class: CellClass) -> set[tuple[int, int]]:
    return {
        (c.dx, c.dy)
        for c in enumerate_disk_cells(b)
        if c.cell_class is cell_class and 0 < c.dy < c.dx
    }


class TestTheoremVI3:
    """The theorem enumerates, per horizontal row, the cell where the circle crosses the
    row's bottom border.  That cell is *usually* the row's strict-octant mixed cell; for
    a handful of radii (e.g. Pythagorean ones like b = 5) the crossed cell's centre lies
    on or inside the circle, so the theorem's set differs from the strict Am set by at
    most one cell per row — the shrunken area of such a cell clips to the full cell, so
    the S_H/S_L totals (checked in TestHighLowAreas) are unaffected."""

    @pytest.mark.parametrize("b", B_VALUES)
    def test_count_close_to_strict_enumeration(self, b):
        enumerated = len(_strict_octant_cells(b, CellClass.MIXED))
        assert abs(octant_mixed_cell_count(b) - enumerated) <= 2

    def test_paper_example_b7(self):
        """The paper's Figure 6 worked example: |E^(m)_{7,(0,pi/4)}| = 4."""
        assert octant_mixed_cell_count(7) == 4

    @pytest.mark.parametrize("b", B_VALUES)
    def test_indices_lie_in_strict_octant_and_touch_the_circle(self, b):
        for x, y in octant_mixed_cell_indices(b):
            assert 0 < y < x
            # The indexed cell is genuinely crossed by (or touches) the circle.
            assert nearest_corner_distance(x, y) <= b <= math.hypot(x + 0.5, y + 0.5)

    @pytest.mark.parametrize("b", B_VALUES)
    def test_indices_cover_all_strict_mixed_cells(self, b):
        """Every strict-octant mixed cell appears among the theorem's indices."""
        assert _strict_octant_cells(b, CellClass.MIXED) <= set(octant_mixed_cell_indices(b))

    def test_invalid_radius_rejected(self):
        with pytest.raises(ValueError):
            octant_mixed_cell_count(0)


class TestTheoremVI4:
    @pytest.mark.parametrize("b", B_VALUES)
    def test_count_close_to_strict_enumeration(self, b):
        """Theorem VI.4's count differs from the strict Ap set only by the border cells
        Theorem VI.3 re-classifies (see TestTheoremVI3); the area totals still agree."""
        enumerated = len(_strict_octant_cells(b, CellClass.PURE_HIGH))
        assert abs(octant_pure_high_cell_count(b) - enumerated) <= 2

    @pytest.mark.parametrize("b", B_VALUES)
    def test_partition_of_octant_cells(self, b):
        """Mixed + pure-high counts cover all strict-octant disk cells."""
        total_strict = len(_strict_octant_cells(b, CellClass.MIXED)) + len(
            _strict_octant_cells(b, CellClass.PURE_HIGH)
        )
        assert octant_mixed_cell_count(b) + octant_pure_high_cell_count(b) == total_strict

    def test_paper_example_b7(self):
        """The paper's Figure 6 worked example: |E^(p)_{7,(0,pi/4)}| = 13."""
        assert octant_pure_high_cell_count(7) == 13


class TestHighLowAreas:
    @pytest.mark.parametrize("b", B_VALUES)
    def test_closed_form_matches_enumeration(self, b):
        sh_enum, _ = disk_high_low_areas(b)
        sh_closed, _ = closed_form_high_low_areas(10, b)
        assert sh_enum == pytest.approx(sh_closed, abs=1e-9)

    @pytest.mark.parametrize("b", B_VALUES)
    @pytest.mark.parametrize("d", [3, 7])
    def test_total_area_equals_output_domain_size(self, d, b):
        """S_H + S_L must cover the whole output domain exactly once."""
        sh, low_in_disk = disk_high_low_areas(b)
        total_cells = output_domain_cell_count(d, b)
        s_low = pure_low_cell_count(d, b) + low_in_disk
        assert sh + s_low == pytest.approx(total_cells, abs=1e-9)

    @pytest.mark.parametrize("b", B_VALUES)
    def test_no_shrink_high_area_is_pure_high_count(self, b):
        sh, low_in_disk = disk_high_low_areas(b, use_shrinkage=False)
        pure_high = sum(
            1 for c in enumerate_disk_cells(b) if c.cell_class is CellClass.PURE_HIGH
        )
        mixed = sum(1 for c in enumerate_disk_cells(b) if c.cell_class is CellClass.MIXED)
        assert sh == pure_high
        assert low_in_disk == mixed

    @pytest.mark.parametrize("b", B_VALUES)
    def test_shrinkage_increases_high_area(self, b):
        sh_with, _ = disk_high_low_areas(b, use_shrinkage=True)
        sh_without, _ = disk_high_low_areas(b, use_shrinkage=False)
        assert sh_with >= sh_without

    @pytest.mark.parametrize("b", B_VALUES)
    def test_high_area_close_to_disk_area(self, b):
        """S_H approximates pi b^2 (the continuous disk) within the border-cell error."""
        sh, _ = disk_high_low_areas(b)
        assert abs(sh - math.pi * b * b) < 4.5 * b  # border error grows with perimeter


class TestOutputDomain:
    @pytest.mark.parametrize("b", [1, 2, 4])
    @pytest.mark.parametrize("d", [1, 3, 6])
    def test_contains_input_grid(self, d, b):
        cells = {tuple(c) for c in output_domain_cells(d, b)}
        for col in range(d):
            for row in range(d):
                assert (col, row) in cells

    def test_extension_ring_width(self):
        cells = output_domain_cells(4, 2)
        assert cells[:, 0].min() == -2
        assert cells[:, 0].max() == 5

    def test_no_duplicates(self):
        cells = output_domain_cells(5, 3)
        assert len({tuple(c) for c in cells}) == cells.shape[0]

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ValueError):
            output_domain_cells(0, 1)

    @given(st.integers(min_value=1, max_value=6), st.integers(min_value=1, max_value=6))
    @settings(max_examples=20, deadline=None)
    def test_size_consistent_with_theorem(self, d, b):
        assert output_domain_cell_count(d, b) == pure_low_cell_count(d, b) + len(
            enumerate_disk_cells(b)
        )


class TestDiskOffsetArray:
    def test_columns(self):
        arr = disk_offset_array(3)
        assert arr.shape[1] == 3

    def test_matches_enumeration(self):
        arr = disk_offset_array(4)
        cells = enumerate_disk_cells(4)
        assert arr.shape[0] == len(cells)
        by_offset = {(c.dx, c.dy): c.high_area for c in cells}
        for dx, dy, area in arr:
            assert by_offset[(int(dx), int(dy))] == pytest.approx(area)
