"""Tests for repro.core.radius — Section V-C's choice of the high-probability radius."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.radius import (
    grid_radius,
    mutual_information_bound,
    mutual_information_bound_curve,
    numeric_optimal_radius,
    optimal_radius,
    scaled_grid_radius,
    small_epsilon_limit_radius,
)


class TestOptimalRadius:
    def test_positive(self):
        assert optimal_radius(3.5) > 0

    def test_decreases_with_epsilon(self):
        """More budget means a smaller disk (the paper's eps -> inf limit is b -> 0)."""
        values = [optimal_radius(eps) for eps in (0.5, 1.0, 2.0, 4.0, 8.0)]
        assert all(a > b for a, b in zip(values, values[1:]))

    def test_small_epsilon_limit(self):
        """As eps -> 0, b -> (2 + sqrt(4 + pi)) / pi (convergence from below)."""
        limit = small_epsilon_limit_radius()
        assert optimal_radius(0.05) == pytest.approx(limit, rel=0.05)
        assert optimal_radius(0.01) == pytest.approx(limit, rel=0.01)
        assert optimal_radius(0.05) <= limit

    def test_large_epsilon_goes_to_zero(self):
        assert optimal_radius(50.0) < 0.01

    def test_scales_linearly_with_side(self):
        assert optimal_radius(2.0, side=3.0) == pytest.approx(3.0 * optimal_radius(2.0))

    def test_small_epsilon_limit_value(self):
        assert small_epsilon_limit_radius() == pytest.approx((2 + math.sqrt(4 + math.pi)) / math.pi)

    def test_invalid_epsilon_rejected(self):
        with pytest.raises(ValueError):
            optimal_radius(-1.0)

    @given(st.floats(min_value=0.3, max_value=9.0))
    @settings(max_examples=40, deadline=None)
    def test_always_within_unit_scale(self, eps):
        """For the unit square the optimum stays below the eps->0 limit."""
        assert 0 < optimal_radius(eps) <= small_epsilon_limit_radius() + 1e-9


class TestMutualInformationBound:
    @pytest.mark.parametrize("eps", [0.7, 2.1, 3.5, 5.0])
    def test_closed_form_maximises_bound(self, eps):
        """The closed-form optimum beats (or ties) a dense grid of alternatives."""
        b_star = optimal_radius(eps)
        best_value = mutual_information_bound(eps, b_star)
        candidates = np.linspace(0.01, 1.5, 300)
        values = mutual_information_bound_curve(eps, candidates)
        assert best_value >= values.max() - 1e-6

    @pytest.mark.parametrize("eps", [1.4, 3.5])
    def test_numeric_optimum_matches_closed_form(self, eps):
        assert numeric_optimal_radius(eps) == pytest.approx(optimal_radius(eps), rel=0.02)

    def test_bound_positive_at_optimum(self):
        assert mutual_information_bound(3.5, optimal_radius(3.5)) > 0

    def test_bound_increases_with_epsilon_at_optimum(self):
        """More budget means more achievable information."""
        values = [mutual_information_bound(eps, optimal_radius(eps)) for eps in (1.0, 2.0, 4.0)]
        assert values[0] < values[1] < values[2]

    def test_general_side_optimum(self):
        """For side L the optimum is L times the unit optimum and maximises the L-bound."""
        eps, side = 2.8, 4.0
        b_star = optimal_radius(eps, side=side)
        candidates = np.linspace(0.01, 2.0 * side, 300)
        values = mutual_information_bound_curve(eps, candidates, side=side)
        assert mutual_information_bound(eps, b_star, side=side) >= values.max() - 1e-6


class TestGridRadius:
    def test_integer_and_at_least_one(self):
        for eps in (0.7, 3.5, 9.0):
            for d in (1, 5, 15, 20):
                b_hat = grid_radius(eps, d, 1.0)
                assert isinstance(b_hat, int)
                assert b_hat >= 1

    def test_matches_paper_default_setting(self):
        """The paper reports b_check ~ 3 for d = 15, eps = 3.5."""
        assert grid_radius(3.5, 15, 1.0) in (2, 3, 4)

    def test_scales_with_d(self):
        assert grid_radius(2.0, 30, 1.0) >= grid_radius(2.0, 10, 1.0)

    def test_side_length_cancels(self):
        """b_hat counts cells, so scaling the domain and the cell size together is a no-op."""
        assert grid_radius(2.5, 12, 1.0) == grid_radius(2.5, 12, 50.0)

    def test_scaled_grid_radius_floor(self):
        base = grid_radius(3.5, 15, 1.0)
        assert scaled_grid_radius(3.5, 15, 1.0, 1.0) == base
        assert scaled_grid_radius(3.5, 15, 0.33, 1.0) == max(int(0.33 * base), 1)

    def test_scaled_grid_radius_minimum_one(self):
        assert scaled_grid_radius(9.0, 2, 0.33, 1.0) >= 1

    def test_scale_must_be_positive(self):
        with pytest.raises(ValueError):
            scaled_grid_radius(3.5, 15, 0.0, 1.0)

    def test_invalid_d_rejected(self):
        with pytest.raises(ValueError):
            grid_radius(3.5, 0, 1.0)
