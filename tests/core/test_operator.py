"""Tests for repro.core.operator — the structured transition-operator engine.

The operator must be numerically indistinguishable from the dense matrix it
represents: same dense materialisation as an independent reference construction,
same forward/backward matvecs, same LDP audit value, and a sampler whose empirical
frequencies match the declared row.  Property-based tests (hypothesis) sweep random
``(d, eps, b_hat)`` configurations.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings

import strategies
from repro.core.dam import DiscreteDAM, DiskOutputDomain, build_disk_transition
from repro.core.domain import GridSpec
from repro.core.estimator import StreamingAggregator
from repro.core.geometry import disk_offset_array
from repro.core.huem import DiscreteHUEM, huem_cell_masses
from repro.core.operator import (
    DenseTransitionOperator,
    build_disk_operator,
)
from repro.core.postprocess import expectation_maximization
from repro.metrics.divergence import chi_square_statistic

SLOW_SETTINGS = settings(
    max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

epsilon_strategy = strategies.epsilons()
grid_strategy = strategies.grid_sides(2, 7)
b_hat_strategy = strategies.b_hats()


def _dam_masses(b_hat: int, epsilon: float) -> np.ndarray:
    offsets = disk_offset_array(b_hat)
    masses = offsets.copy()
    masses[:, 2] = offsets[:, 2] * math.exp(epsilon) + (1.0 - offsets[:, 2])
    return masses


def _reference_dense(grid: GridSpec, b_hat: int, masses: np.ndarray) -> np.ndarray:
    """Independent dense construction via per-cell dictionary lookups (the seed
    implementation), kept here so the vectorised operator is checked against
    something that shares none of its code."""
    domain = DiskOutputDomain.build(grid.d, b_hat)
    lookup = domain.index_lookup()
    total = float(masses[:, 2].sum())
    normaliser = total + (domain.size - masses.shape[0])
    dense = np.full((grid.n_cells, domain.size), 1.0 / normaliser)
    for flat, row, col in grid.iter_cells():
        for dx, dy, mass in masses:
            dense[flat, lookup[(col + int(dx), row + int(dy))]] = mass / normaliser
    return dense


class TestOperatorMatchesDense:
    @given(grid_strategy, epsilon_strategy, b_hat_strategy)
    @SLOW_SETTINGS
    def test_to_dense_matches_reference_construction(self, d, epsilon, b_hat):
        grid = GridSpec.unit(d)
        masses = _dam_masses(b_hat, epsilon)
        operator = build_disk_operator(grid, b_hat, masses)
        np.testing.assert_allclose(
            operator.to_dense(), _reference_dense(grid, b_hat, masses), atol=1e-15
        )

    @given(grid_strategy, epsilon_strategy, b_hat_strategy, strategies.seeds())
    @SLOW_SETTINGS
    def test_matvecs_match_dense(self, d, epsilon, b_hat, seed):
        rng = np.random.default_rng(seed)
        grid = GridSpec.unit(d)
        operator = build_disk_operator(grid, b_hat, _dam_masses(b_hat, epsilon))
        dense = operator.to_dense()
        theta = rng.dirichlet(np.ones(grid.n_cells))
        weights = rng.random(operator.n_outputs)
        np.testing.assert_allclose(operator.forward(theta), theta @ dense, atol=1e-12)
        np.testing.assert_allclose(operator.backward(weights), dense @ weights, atol=1e-12)

    @given(grid_strategy, epsilon_strategy, b_hat_strategy)
    @SLOW_SETTINGS
    def test_ldp_ratio_matches_dense_audit(self, d, epsilon, b_hat):
        operator = build_disk_operator(GridSpec.unit(d), b_hat, _dam_masses(b_hat, epsilon))
        dense = operator.to_dense()
        ratio = (dense.max(axis=0) / dense.min(axis=0)).max()
        assert operator.ldp_ratio() == pytest.approx(float(ratio), rel=1e-12)
        assert operator.ldp_ratio() <= math.exp(epsilon) * (1 + 1e-9)

    @given(grid_strategy, epsilon_strategy, b_hat_strategy)
    @SLOW_SETTINGS
    def test_row_matches_dense_row(self, d, epsilon, b_hat):
        grid = GridSpec.unit(d)
        operator = build_disk_operator(grid, b_hat, _dam_masses(b_hat, epsilon))
        dense = operator.to_dense()
        for cell in (0, grid.n_cells // 2, grid.n_cells - 1):
            np.testing.assert_allclose(operator.row(cell), dense[cell], atol=1e-15)

    def test_huem_operator_matches_build_disk_transition(self):
        grid = GridSpec.unit(6)
        masses = huem_cell_masses(2, 3.5)
        operator = build_disk_operator(grid, 2, masses)
        dense, domain, normaliser = build_disk_transition(grid, 2, masses)
        np.testing.assert_allclose(operator.to_dense(), dense, atol=1e-15)
        assert operator.normaliser == pytest.approx(normaliser)
        assert operator.n_outputs == domain.size

    def test_invalid_mass_shape_rejected(self):
        with pytest.raises(ValueError):
            build_disk_operator(GridSpec.unit(4), 2, np.zeros((3, 2)))

    def test_large_grid_construction_survives_rounding(self):
        # Regression target: the row-sum sanity check used a fixed atol=1e-6,
        # which a large output domain's accumulated rounding can trip even when
        # the operator is exactly row-stochastic in intent.  The tolerance now
        # scales with the output-domain size, so a d=256 build must succeed.
        grid = GridSpec.unit(256)
        operator = build_disk_operator(grid, 3, _dam_masses(3, 3.5))
        assert operator.shape == (256 * 256, operator.n_outputs)
        theta = np.full(grid.n_cells, 1.0 / grid.n_cells)
        assert operator.forward(theta).sum() == pytest.approx(1.0, abs=1e-9)

    def test_row_sum_tolerance_scales_with_output_domain(self):
        # Sub-1e-6 per-output drift must pass on a big domain (scaled atol) and
        # a grossly wrong row sum must still be rejected with the tolerance in
        # the message.
        grid = GridSpec.unit(32)
        masses = _dam_masses(2, 2.0)
        operator = build_disk_operator(grid, 2, masses)
        atol = max(1e-6, 1e-9 * operator.n_outputs)
        assert atol >= 1e-6
        bad = masses.copy()
        bad[:, 2] *= 1.5
        with pytest.raises(ValueError, match="tolerance"):
            # Re-normalise against the *unscaled* normaliser so row sums are off.
            from repro.core.operator import DiskTransitionOperator

            DiskTransitionOperator(
                grid,
                2,
                offsets=masses[:, :2].astype(np.int64),
                values=bad[:, 2] / (operator.normaliser),
                background=1.0 / operator.normaliser,
                output_cells=operator.output_cells,
                normaliser=operator.normaliser,
            )


class TestOperatorSampling:
    def test_empirical_frequencies_match_declared_row(self):
        grid = GridSpec.unit(5)
        operator = build_disk_operator(grid, 2, _dam_masses(2, 2.5))
        rng = np.random.default_rng(11)
        cell, n = 12, 40_000
        reports = operator.sample(np.full(n, cell, dtype=np.int64), rng)
        observed = np.bincount(reports, minlength=operator.n_outputs)
        expected = operator.row(cell) * n
        assert chi_square_statistic(observed, expected) < 1.5 * operator.n_outputs

    def test_one_uniform_per_user_makes_streaming_bit_exact(self):
        grid = GridSpec.unit(6)
        operator = build_disk_operator(grid, 2, _dam_masses(2, 3.5))
        cells = np.random.default_rng(0).integers(0, grid.n_cells, 10_000)
        batch = operator.sample(cells, np.random.default_rng(99))
        rng = np.random.default_rng(99)
        chunked = np.concatenate(
            [operator.sample(chunk, rng) for chunk in np.array_split(cells, 7)]
        )
        np.testing.assert_array_equal(batch, chunked)

    def test_empty_batch(self):
        operator = build_disk_operator(GridSpec.unit(3), 1, _dam_masses(1, 2.0))
        reports = operator.sample(np.empty(0, dtype=np.int64), np.random.default_rng(0))
        assert reports.shape == (0,)

    def test_no_background_cells(self):
        # d = 1: the output domain is exactly the disk neighbourhood — every output
        # cell is a disk cell and the background branch must never divide by zero.
        grid = GridSpec.unit(1)
        operator = build_disk_operator(grid, 2, _dam_masses(2, 2.0))
        assert operator.n_outputs == operator.n_offsets
        reports = operator.sample(np.zeros(500, dtype=np.int64), np.random.default_rng(1))
        assert reports.min() >= 0 and reports.max() < operator.n_outputs


class TestExpectationMaximizationBackends:
    @given(grid_strategy, epsilon_strategy, b_hat_strategy, strategies.seeds())
    @SLOW_SETTINGS
    def test_em_parity_operator_vs_dense(self, d, epsilon, b_hat, seed):
        grid = GridSpec.unit(d)
        operator = build_disk_operator(grid, b_hat, _dam_masses(b_hat, epsilon))
        rng = np.random.default_rng(seed)
        cells = rng.integers(0, grid.n_cells, 3000)
        counts = np.bincount(operator.sample(cells, rng), minlength=operator.n_outputs)
        via_operator = expectation_maximization(operator, counts, max_iterations=50, tolerance=0.0)
        via_dense = expectation_maximization(
            operator.to_dense(), counts, max_iterations=50, tolerance=0.0
        )
        np.testing.assert_allclose(via_operator.estimate, via_dense.estimate, atol=1e-10)
        assert via_operator.log_likelihood == pytest.approx(via_dense.log_likelihood, rel=1e-9)

    def test_dense_adapter_protocol(self):
        matrix = np.array([[0.7, 0.3], [0.2, 0.8]])
        adapter = DenseTransitionOperator(matrix)
        assert adapter.shape == (2, 2)
        np.testing.assert_allclose(adapter.forward(np.array([0.5, 0.5])), [0.45, 0.55])
        np.testing.assert_allclose(adapter.backward(np.array([1.0, 0.0])), [0.7, 0.2])


class TestMechanismIntegration:
    @pytest.mark.parametrize("mechanism_cls", [DiscreteDAM, DiscreteHUEM])
    def test_backend_estimates_agree(self, mechanism_cls):
        grid = GridSpec.unit(6)
        via_operator = mechanism_cls(grid, 3.5, b_hat=2, backend="operator")
        via_dense = mechanism_cls(grid, 3.5, b_hat=2, backend="dense")
        assert via_operator.operator is not None
        assert via_dense.operator is None
        counts = np.zeros(via_operator.output_domain_size())
        counts[: grid.n_cells] = np.random.default_rng(3).integers(0, 50, grid.n_cells)
        a = via_operator.estimate(counts, int(counts.sum()))
        b = via_dense.estimate(counts, int(counts.sum()))
        np.testing.assert_allclose(a.flat(), b.flat(), atol=1e-10)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            DiscreteDAM(GridSpec.unit(4), 2.0, backend="sparse")

    def test_ls_postprocess_still_works_on_operator_backend(self):
        mech = DiscreteDAM(GridSpec.unit(4), 2.0, b_hat=1, postprocess="ls")
        report = mech.run_cells(np.array([0, 3, 7, 7, 12]), seed=0)
        assert report.estimate.flat().sum() == pytest.approx(1.0)


class TestStreamingAggregator:
    def test_stream_equals_batch_with_shared_seed(self):
        grid = GridSpec.unit(5)
        mech = DiscreteDAM(grid, 3.5, b_hat=1)
        cells = np.random.default_rng(4).integers(0, grid.n_cells, 8000)
        batch = mech.run_cells(cells, seed=123)
        aggregator = StreamingAggregator(mech, seed=123)
        for chunk in np.array_split(cells, 11):
            aggregator.add_cells(chunk)
        report = aggregator.finalize()
        np.testing.assert_array_equal(report.noisy_counts, batch.noisy_counts)
        np.testing.assert_allclose(report.estimate.flat(), batch.estimate.flat(), atol=1e-12)
        assert report.n_users == batch.n_users == 8000

    def test_true_cell_counts_accumulate(self):
        grid = GridSpec.unit(4)
        mech = DiscreteDAM(grid, 2.0, b_hat=1)
        aggregator = mech.streaming_aggregator(seed=0)
        aggregator.add_cells(np.array([0, 0, 5])).add_cells(np.array([5, 15]))
        assert aggregator.true_cell_counts[0] == 2
        assert aggregator.true_cell_counts[5] == 2
        assert aggregator.true_cell_counts[15] == 1
        assert aggregator.n_users == 5

    def test_empty_chunks_are_ignored(self):
        mech = DiscreteDAM(GridSpec.unit(3), 2.0, b_hat=1)
        aggregator = mech.streaming_aggregator(seed=0)
        aggregator.add_cells(np.empty(0, dtype=np.int64))
        assert aggregator.n_users == 0

    def test_mid_stream_checkpoint_is_immutable(self):
        """finalize() snapshots the histogram: later shards must not mutate an
        already-returned report."""
        mech = DiscreteDAM(GridSpec.unit(3), 2.0, b_hat=1)
        aggregator = mech.streaming_aggregator(seed=0)
        aggregator.add_cells(np.arange(9))
        checkpoint = aggregator.finalize()
        frozen = checkpoint.noisy_counts.copy()
        aggregator.add_cells(np.arange(9))
        np.testing.assert_array_equal(checkpoint.noisy_counts, frozen)
        assert aggregator.finalize().n_users == 18

    def test_run_stream_points(self):
        grid = GridSpec.unit(4)
        mech = DiscreteDAM(grid, 3.0, b_hat=1)
        points = np.random.default_rng(5).random((2000, 2))
        streamed = mech.run_stream(np.array_split(points, 4), seed=9)
        batch = mech.run(points, seed=9)
        np.testing.assert_array_equal(streamed.noisy_counts, batch.noisy_counts)
