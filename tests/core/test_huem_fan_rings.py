"""Tests for the Appendix-A fan-ring discretisation of HUEM."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.domain import GridSpec
from repro.core.huem import DiscreteHUEM, huem_cell_masses, huem_cell_masses_fan_rings


class TestFanRingMasses:
    @pytest.mark.parametrize("b_hat", [1, 2, 3, 5])
    @pytest.mark.parametrize("epsilon", [0.7, 2.0, 3.5])
    def test_masses_within_ldp_range(self, b_hat, epsilon):
        masses = huem_cell_masses_fan_rings(b_hat, epsilon)
        assert masses[:, 2].min() >= 1.0 - 1e-9
        assert masses[:, 2].max() <= math.exp(epsilon) + 1e-9

    def test_center_cell_has_full_mass(self):
        masses = huem_cell_masses_fan_rings(3, 2.0)
        center = masses[(masses[:, 0] == 0) & (masses[:, 1] == 0), 2][0]
        assert center == pytest.approx(math.exp(2.0))

    def test_same_cells_as_integral_discretisation(self):
        rings = huem_cell_masses_fan_rings(4, 2.0)
        integral = huem_cell_masses(4, 2.0)
        assert {(int(r[0]), int(r[1])) for r in rings} == {
            (int(r[0]), int(r[1])) for r in integral
        }

    def test_roughly_agrees_with_integral_discretisation(self):
        """The two Appendix-A-compatible discretisations assign similar masses."""
        rings = {(int(r[0]), int(r[1])): r[2] for r in huem_cell_masses_fan_rings(4, 2.0)}
        integral = {(int(r[0]), int(r[1])): r[2] for r in huem_cell_masses(4, 2.0)}
        differences = [abs(rings[key] - integral[key]) for key in rings]
        # The fan-ring scheme holds the wave value of the ring's inner radius constant
        # across the whole ring, so it sits above the cell-averaged integral; the two
        # stay within about one ring step of each other (masses span [1, e^2] here).
        assert np.mean(differences) < 1.2

    def test_mass_weakly_decreases_with_ring(self):
        masses = huem_cell_masses_fan_rings(5, 3.0)
        radii = np.hypot(masses[:, 0], masses[:, 1])
        # Compare the mean mass of the innermost ring with the outermost one.
        inner = masses[radii <= 1.0, 2].mean()
        outer = masses[radii >= 4.0, 2].mean()
        assert inner > outer

    def test_invalid_radius_rejected(self):
        with pytest.raises(ValueError):
            huem_cell_masses_fan_rings(0, 1.0)


class TestFanRingMechanism:
    @pytest.mark.parametrize("epsilon", [0.7, 2.1, 3.5])
    def test_ldp_ratio_bounded(self, epsilon):
        mech = DiscreteHUEM(GridSpec.unit(6), epsilon, b_hat=2, discretisation="fan-rings")
        assert mech.ldp_ratio() <= math.exp(epsilon) * (1 + 1e-9)

    def test_rows_sum_to_one(self):
        mech = DiscreteHUEM(GridSpec.unit(5), 2.0, b_hat=2, discretisation="fan-rings")
        np.testing.assert_allclose(mech.transition.sum(axis=1), 1.0)

    def test_estimation_works(self, clustered_points, unit_grid5):
        mech = DiscreteHUEM(unit_grid5, 4.0, b_hat=1, discretisation="fan-rings")
        estimate = mech.run(clustered_points, seed=0).estimate
        assert estimate.flat().sum() == pytest.approx(1.0)

    def test_similar_utility_to_integral_variant(self, clustered_points, unit_grid5):
        from repro.metrics.wasserstein import wasserstein2_grid

        true = unit_grid5.distribution(clustered_points)
        ring_mech = DiscreteHUEM(unit_grid5, 3.5, b_hat=2, discretisation="fan-rings")
        integral_mech = DiscreteHUEM(unit_grid5, 3.5, b_hat=2, discretisation="integral")
        ring_error = wasserstein2_grid(true, ring_mech.run(clustered_points, seed=1).estimate)
        integral_error = wasserstein2_grid(
            true, integral_mech.run(clustered_points, seed=1).estimate
        )
        assert ring_error == pytest.approx(integral_error, abs=0.08)

    def test_unknown_discretisation_rejected(self, unit_grid5):
        with pytest.raises(ValueError):
            DiscreteHUEM(unit_grid5, 2.0, discretisation="polar")
