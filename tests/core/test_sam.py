"""Tests for repro.core.sam — the SAM framework, DAM/HUEM waves and ε-LDP auditing."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.domain import SpatialDomain
from repro.core.sam import (
    ContinuousSAM,
    DiskWave,
    ExponentialWave,
    audit_sam_conditions,
    dam_probabilities,
    huem_base_density,
    rounded_square_area,
)

EPSILONS = [0.7, 1.4, 3.5, 5.0]
RADII = [0.1, 0.25, 0.5]


class TestRoundedSquareArea:
    def test_unit_square_formula(self):
        assert rounded_square_area(0.2) == pytest.approx(1 + 0.8 + math.pi * 0.04)

    def test_zero_radius(self):
        assert rounded_square_area(0.0) == 1.0

    def test_general_side(self):
        assert rounded_square_area(0.5, side=2.0) == pytest.approx(4 + 4 + math.pi * 0.25)


class TestDamProbabilities:
    @pytest.mark.parametrize("eps", EPSILONS)
    @pytest.mark.parametrize("b", RADII)
    def test_ratio_is_exactly_exp_eps(self, eps, b):
        probs = dam_probabilities(eps, b)
        assert probs.ratio == pytest.approx(math.exp(eps))

    @pytest.mark.parametrize("eps", EPSILONS)
    @pytest.mark.parametrize("b", RADII)
    def test_total_mass_is_one(self, eps, b):
        """p * (disk area) + q * (flat area) = 1."""
        probs = dam_probabilities(eps, b)
        disk = math.pi * b * b
        flat = 4 * b + 1
        assert probs.p * disk + probs.q * flat == pytest.approx(1.0)

    def test_matches_paper_definition8(self):
        eps, b = 2.0, 0.3
        probs = dam_probabilities(eps, b)
        denom = math.pi * b * b * math.exp(eps) + 4 * b + 1
        assert probs.p == pytest.approx(math.exp(eps) / denom)
        assert probs.q == pytest.approx(1.0 / denom)

    def test_general_side_mass_is_one(self):
        probs = dam_probabilities(2.0, 0.5, side=3.0)
        disk = math.pi * 0.25
        flat = 4 * 3.0 * 0.5 + 9.0
        assert probs.p * disk + probs.q * flat == pytest.approx(1.0)

    @given(
        st.floats(min_value=0.2, max_value=9.0),
        st.floats(min_value=0.01, max_value=2.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_probabilities_always_valid(self, eps, b):
        probs = dam_probabilities(eps, b)
        assert 0 < probs.q < probs.p
        assert probs.ratio == pytest.approx(math.exp(eps), rel=1e-9)


class TestHuemBaseDensity:
    @pytest.mark.parametrize("eps", EPSILONS)
    @pytest.mark.parametrize("b", RADII)
    def test_positive(self, eps, b):
        assert huem_base_density(eps, b) > 0

    def test_matches_paper_definition5(self):
        eps, b = 2.0, 0.3
        expected = eps**2 / (
            2 * math.pi * (math.exp(eps) - 1 - eps) * b * b + 4 * eps**2 * b + eps**2
        )
        assert huem_base_density(eps, b) == pytest.approx(expected)

    def test_small_epsilon_limit_is_uniform(self):
        """As eps -> 0 HUEM degenerates to the uniform mechanism: q -> 1/(pi b^2 + 4b + 1)."""
        b = 0.4
        q = huem_base_density(0.2, b)
        uniform = 1.0 / (math.pi * b * b + 4 * b + 1)
        assert q == pytest.approx(uniform, rel=0.05)


class TestWaves:
    @pytest.mark.parametrize("wave_cls", [DiskWave, ExponentialWave])
    @pytest.mark.parametrize("eps", [0.7, 3.5])
    def test_density_ratio_bounded_by_exp_eps(self, wave_cls, eps):
        wave = wave_cls(eps, 0.3)
        rng = np.random.default_rng(0)
        offsets = rng.uniform(-1.5, 1.5, size=(5000, 2))
        density = wave.density(offsets)
        assert density.max() / density.min() <= math.exp(eps) * (1 + 1e-9)

    @pytest.mark.parametrize("wave_cls", [DiskWave, ExponentialWave])
    def test_flat_outside_disk(self, wave_cls):
        wave = wave_cls(2.0, 0.25)
        far = np.array([[0.5, 0.5], [1.0, 0.0], [-0.7, 0.9]])
        np.testing.assert_allclose(wave.density(far), wave.q)

    def test_disk_wave_constant_inside(self):
        wave = DiskWave(2.0, 0.3)
        inside = np.array([[0.0, 0.0], [0.1, 0.1], [0.0, 0.29]])
        np.testing.assert_allclose(wave.density(inside), wave.p)

    def test_exponential_wave_decreases_with_distance(self):
        wave = ExponentialWave(3.0, 0.4)
        radii = np.linspace(0.0, 0.4, 20)
        values = wave.density_at_radius(radii)
        assert np.all(np.diff(values) <= 1e-12)

    def test_exponential_wave_peak_is_q_exp_eps(self):
        wave = ExponentialWave(2.5, 0.3)
        assert wave.max_density() == pytest.approx(wave.q * math.exp(2.5))

    def test_disk_wave_max_density_is_p(self):
        wave = DiskWave(2.5, 0.3)
        assert wave.max_density() == pytest.approx(wave.p)

    @pytest.mark.parametrize("wave_cls", [DiskWave, ExponentialWave])
    def test_sam_condition_2_disk_mass(self, wave_cls):
        """The integral of W over the disk equals 1 - (4b + 1) q (Definition 4)."""
        wave = wave_cls(2.0, 0.3)
        audit = audit_sam_conditions(wave)
        assert audit["disk_mass"] == pytest.approx(audit["target_disk_mass"], rel=2e-2)

    @pytest.mark.parametrize("wave_cls", [DiskWave, ExponentialWave])
    def test_sam_condition_ratio_audit(self, wave_cls):
        wave = wave_cls(1.4, 0.5)
        audit = audit_sam_conditions(wave)
        assert audit["max_over_min_ratio"] <= audit["epsilon_bound"] * (1 + 1e-9)

    def test_invalid_epsilon_rejected(self):
        with pytest.raises(ValueError):
            DiskWave(0.0, 0.3)

    def test_invalid_radius_rejected(self):
        with pytest.raises(ValueError):
            ExponentialWave(1.0, 0.0)


class TestContinuousSAM:
    def test_reports_stay_in_output_domain(self):
        sam = ContinuousSAM(DiskWave(3.0, 0.2))
        rng = np.random.default_rng(1)
        points = rng.random((50, 2))
        reports = sam.privatize(points, seed=rng)
        assert np.all(sam.in_output_domain(reports, points))

    def test_single_point_input(self):
        sam = ContinuousSAM(ExponentialWave(2.0, 0.3))
        report = sam.privatize(np.array([0.5, 0.5]), seed=0)
        assert report.shape == (1, 2)

    def test_output_bounds_extend_by_b(self):
        sam = ContinuousSAM(DiskWave(2.0, 0.25))
        assert sam.output_bounds() == (-0.25, 1.25, -0.25, 1.25)

    def test_high_probability_mass_concentrates_near_truth(self):
        """Most reports (p * pi b^2 of the mass) should land inside the b-disk."""
        eps, b = 4.0, 0.3
        sam = ContinuousSAM(DiskWave(eps, b))
        rng = np.random.default_rng(2)
        point = np.array([[0.5, 0.5]])
        reports = sam.privatize(np.repeat(point, 400, axis=0), seed=rng)
        distances = np.linalg.norm(reports - point, axis=1)
        expected_fraction = dam_probabilities(eps, b).p * math.pi * b * b
        assert abs((distances <= b).mean() - expected_fraction) < 0.08

    def test_in_output_domain_rounded_corners(self):
        sam = ContinuousSAM(DiskWave(2.0, 0.2))
        # The corner of the bounding box is farther than b from the square -> outside.
        corner = np.array([[1.19, 1.19]])
        assert not sam.in_output_domain(corner, np.array([1.0, 1.0]))

    def test_custom_domain(self):
        domain = SpatialDomain(0.0, 2.0, 0.0, 2.0)
        sam = ContinuousSAM(DiskWave(2.0, 0.5, side=2.0), domain)
        reports = sam.privatize(np.array([[1.0, 1.0]]), seed=0)
        assert sam.in_output_domain(reports, np.array([1.0, 1.0]))[0]
