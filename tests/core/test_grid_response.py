"""Tests for repro.core.grid_response — the literal Algorithm 2 implementation."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.dam import DiscreteDAM
from repro.core.domain import GridSpec
from repro.core.grid_response import GridAreaResponse
from repro.metrics.divergence import chi_square_statistic


@pytest.fixture(scope="module")
def grid5() -> GridSpec:
    return GridSpec.unit(5)


@pytest.fixture(scope="module")
def response(grid5) -> GridAreaResponse:
    return GridAreaResponse(grid5, epsilon=2.5, b_hat=2)


class TestParts:
    def test_partition_covers_output_domain(self, response):
        parts = response.parts(12)
        covered = (
            set(parts.pure_low_cells.tolist())
            | set(parts.pure_high_cells.tolist())
            | set(parts.mixed_cells.tolist())
        )
        assert covered == set(range(response.output_domain.size))

    def test_partition_is_disjoint(self, response):
        parts = response.parts(12)
        assert not set(parts.pure_low_cells.tolist()) & set(parts.pure_high_cells.tolist())
        assert not set(parts.pure_low_cells.tolist()) & set(parts.mixed_cells.tolist())
        assert not set(parts.pure_high_cells.tolist()) & set(parts.mixed_cells.tolist())

    def test_mixed_areas_in_unit_interval(self, response):
        parts = response.parts(0)
        assert np.all(parts.mixed_high_areas >= 0)
        assert np.all(parts.mixed_high_areas <= 1)
        np.testing.assert_allclose(parts.mixed_high_areas + parts.mixed_low_areas, 1.0)

    def test_invalid_cell_rejected(self, response):
        with pytest.raises(ValueError):
            response.parts(response.grid.n_cells)

    def test_parts_cached(self, response):
        assert response.parts(3) is response.parts(3)


class TestAlgorithm2MatchesTransitionMatrix:
    """The headline correctness check: Algorithm 2's induced probabilities equal the
    vectorised DAM transition row for every input cell."""

    @pytest.mark.parametrize("epsilon", [0.7, 2.5, 5.0])
    def test_probabilities_match_dam(self, grid5, epsilon):
        response = GridAreaResponse(grid5, epsilon=epsilon, b_hat=2)
        dam = DiscreteDAM(grid5, epsilon, b_hat=2)
        for cell in range(grid5.n_cells):
            np.testing.assert_allclose(
                response.response_probabilities(cell), dam.transition[cell], atol=1e-12
            )

    def test_probabilities_match_dam_ns(self, grid5):
        response = GridAreaResponse(grid5, epsilon=2.0, b_hat=2, use_shrinkage=False)
        dam_ns = DiscreteDAM(grid5, 2.0, b_hat=2, use_shrinkage=False)
        for cell in (0, 7, 24):
            np.testing.assert_allclose(
                response.response_probabilities(cell), dam_ns.transition[cell], atol=1e-12
            )

    def test_probabilities_sum_to_one(self, response):
        for cell in range(response.grid.n_cells):
            assert response.response_probabilities(cell).sum() == pytest.approx(1.0)

    def test_ldp_bound_on_probabilities(self, response):
        probs = np.vstack(
            [response.response_probabilities(c) for c in range(response.grid.n_cells)]
        )
        ratio = (probs.max(axis=0) / probs.min(axis=0)).max()
        assert ratio <= math.exp(response.epsilon) * (1 + 1e-9)


class TestSampling:
    def test_respond_returns_valid_index(self, response):
        rng = np.random.default_rng(0)
        for _ in range(50):
            report = response.respond(7, seed=rng)
            assert 0 <= report < response.output_domain.size

    def test_respond_many_shape(self, response):
        reports = response.respond_many(np.array([0, 1, 2, 3]), seed=1)
        assert reports.shape == (4,)

    def test_empirical_frequencies_match_declared(self, response):
        rng = np.random.default_rng(3)
        cell = 18
        n = 20_000
        reports = np.array([response.respond(cell, seed=rng) for _ in range(n)])
        observed = np.bincount(reports, minlength=response.output_domain.size)
        expected = response.response_probabilities(cell) * n
        assert chi_square_statistic(observed, expected) < 1.5 * response.output_domain.size

    def test_default_b_hat(self, grid5):
        response = GridAreaResponse(grid5, epsilon=3.5)
        assert response.b_hat >= 1

    def test_invalid_b_hat_rejected(self, grid5):
        with pytest.raises(ValueError):
            GridAreaResponse(grid5, epsilon=2.0, b_hat=0)

    def test_respond_many_matches_literal_respond_distribution(self, response):
        """The batch sampler draws from the exact Algorithm 2 distribution."""
        rng = np.random.default_rng(8)
        cell, n = 7, 20_000
        reports = response.respond_many(np.full(n, cell), seed=rng)
        observed = np.bincount(reports, minlength=response.output_domain.size)
        expected = response.response_probabilities(cell) * n
        assert chi_square_statistic(observed, expected) < 1.5 * response.output_domain.size

    @pytest.mark.parametrize("b_hat", [2, 4, 8])
    def test_extreme_b_hat_no_pure_low_cells(self, b_hat):
        """Regression: at extreme b_hat no pure-low cell remains (d = 1 makes the
        output domain exactly the disk); the zero-area part must never be selected
        nor sampled from an empty cell array."""
        response = GridAreaResponse(GridSpec.unit(1), epsilon=2.0, b_hat=b_hat)
        parts = response.parts(0)
        assert parts.pure_low_cells.size == 0
        rng = np.random.default_rng(0)
        for _ in range(200):
            report = response.respond(0, seed=rng)
            assert 0 <= report < response.output_domain.size
        reports = response.respond_many(np.zeros(500, dtype=np.int64), seed=1)
        assert reports.min() >= 0 and reports.max() < response.output_domain.size

    def test_extreme_b_hat_no_shrinkage_zero_mixed_high(self):
        """With shrinkage disabled the mixed-high part has zero area as well."""
        response = GridAreaResponse(GridSpec.unit(1), epsilon=3.0, b_hat=6, use_shrinkage=False)
        rng = np.random.default_rng(2)
        reports = [response.respond(0, seed=rng) for _ in range(100)]
        assert all(0 <= r < response.output_domain.size for r in reports)
