"""Tests for repro.core.postprocess — EM / EMS, least squares and simplex projection."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.postprocess import (
    expectation_maximization,
    make_grid_smoother,
    make_line_smoother,
    matrix_inversion_estimate,
    project_to_simplex,
)


def _noisy_counts(transition: np.ndarray, truth: np.ndarray, n: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    counts = np.zeros(transition.shape[1])
    cells = rng.choice(truth.size, size=n, p=truth)
    for cell in cells:
        counts[rng.choice(transition.shape[1], p=transition[cell])] += 1
    return counts


@pytest.fixture(scope="module")
def simple_transition() -> np.ndarray:
    """A 4-category randomised-response style transition (keep w.p. 0.7)."""
    k = 4
    matrix = np.full((k, k), 0.1)
    np.fill_diagonal(matrix, 0.7)
    return matrix


class TestExpectationMaximization:
    def test_estimate_is_distribution(self, simple_transition):
        counts = np.array([100.0, 50.0, 25.0, 25.0])
        result = expectation_maximization(simple_transition, counts)
        assert result.estimate.sum() == pytest.approx(1.0)
        assert np.all(result.estimate >= 0)

    def test_recovers_truth_with_many_samples(self, simple_transition):
        truth = np.array([0.5, 0.3, 0.15, 0.05])
        counts = _noisy_counts(simple_transition, truth, 60_000, seed=0)
        result = expectation_maximization(simple_transition, counts)
        np.testing.assert_allclose(result.estimate, truth, atol=0.02)

    def test_identity_transition_recovers_exactly(self):
        truth = np.array([0.25, 0.5, 0.25])
        counts = truth * 1000
        result = expectation_maximization(np.eye(3), counts)
        np.testing.assert_allclose(result.estimate, truth, atol=1e-6)

    def test_converged_flag(self, simple_transition):
        counts = np.array([10.0, 10.0, 10.0, 10.0])
        result = expectation_maximization(simple_transition, counts, max_iterations=500)
        assert result.converged

    def test_zero_counts_give_uniform(self, simple_transition):
        result = expectation_maximization(simple_transition, np.zeros(4))
        np.testing.assert_allclose(result.estimate, 0.25)

    def test_log_likelihood_never_decreases(self, simple_transition):
        """EM's defining property: the likelihood is monotone in the iteration count."""
        truth = np.array([0.6, 0.2, 0.1, 0.1])
        counts = _noisy_counts(simple_transition, truth, 5000, seed=1)
        previous = -np.inf
        for iterations in (1, 3, 10, 50):
            result = expectation_maximization(
                simple_transition, counts, max_iterations=iterations, tolerance=0.0
            )
            assert result.log_likelihood >= previous - 1e-9
            previous = result.log_likelihood

    def test_initial_distribution_respected(self, simple_transition):
        counts = np.array([5.0, 5.0, 5.0, 5.0])
        result = expectation_maximization(
            simple_transition, counts, max_iterations=0 + 1, initial=np.array([0.7, 0.1, 0.1, 0.1])
        )
        assert result.estimate.shape == (4,)

    def test_wrong_count_length_rejected(self, simple_transition):
        with pytest.raises(ValueError):
            expectation_maximization(simple_transition, np.zeros(5))

    def test_negative_counts_rejected(self, simple_transition):
        with pytest.raises(ValueError):
            expectation_maximization(simple_transition, np.array([1.0, -1.0, 0.0, 0.0]))

    def test_non_stochastic_transition_rejected(self):
        with pytest.raises(ValueError):
            expectation_maximization(np.array([[0.5, 0.4], [0.5, 0.5]]), np.zeros(2))

    def test_smoothing_callable_applied(self, simple_transition):
        counts = np.array([100.0, 0.0, 0.0, 0.0])
        smoother = make_line_smoother(4, strength=1.0)
        smoothed = expectation_maximization(simple_transition, counts, smoothing=smoother)
        plain = expectation_maximization(simple_transition, counts)
        # Smoothing spreads mass: the peak must be lower than without smoothing.
        assert smoothed.estimate.max() < plain.estimate.max()

    def test_rectangular_transition(self):
        """More outputs than inputs (the DAM case) is supported."""
        transition = np.array([[0.6, 0.2, 0.2, 0.0], [0.0, 0.2, 0.2, 0.6]])
        counts = np.array([30.0, 10.0, 10.0, 50.0])
        result = expectation_maximization(transition, counts)
        assert result.estimate.shape == (2,)
        assert result.estimate[1] > result.estimate[0]


class TestOverflowRescue:
    """Regression: M-step overflow when ``predicted`` hits the 1e-300 clip floor.

    A transition with an all-zero output column plus a huge count on that output
    drives ``counts / predicted`` to ``inf``; the backward matvec then produces
    ``0 * inf -> NaN`` and the normalisation spreads it over the whole estimate.
    The rescue rescales the numerator by its max (which cancels in the final
    normalisation) — and must be bit-preserving when the ratio stays finite.
    """

    def test_huge_count_on_zero_mass_output_stays_finite(self):
        # Column 1 carries zero mass under every input, so predicted[1] clips to
        # 1e-300; a 1e10 count there overflows the raw ratio to inf.
        transition = np.array([[1.0, 0.0], [1.0, 0.0]])
        counts = np.array([1.0, 1e10])
        result = expectation_maximization(transition, counts, max_iterations=5)
        assert np.isfinite(result.estimate).all()
        assert result.estimate.sum() == pytest.approx(1.0)
        assert np.isfinite(result.log_likelihood)

    def test_pathological_disk_operator_stays_finite(self):
        # The mechanism-shaped version: mass concentrated on outputs the current
        # estimate starves.  Zero counts everywhere except one output cell, at a
        # magnitude that overflows against the clip floor.
        from repro.core.dam import DiscreteDAM
        from repro.core.domain import GridSpec

        mech = DiscreteDAM(GridSpec.unit(4), 2.0, b_hat=1, postprocess="em")
        counts = np.zeros(mech.output_domain_size())
        counts[0] = 1e305
        result = expectation_maximization(
            mech._estimation_transition(), counts, max_iterations=10
        )
        assert np.isfinite(result.estimate).all()
        assert result.estimate.sum() == pytest.approx(1.0)

    def test_rescue_branch_is_bit_preserving_when_untaken(self, simple_transition):
        # Inline replication of the pre-fix loop: on well-conditioned inputs the
        # fixed implementation must produce bit-identical iterates.
        counts = np.array([120.0, 43.0, 9.0, 28.0])
        k = simple_transition.shape[0]
        theta = np.full(k, 1.0 / k)
        for _ in range(25):
            predicted = np.clip(theta @ simple_transition, 1e-300, None)
            new = theta * (simple_transition @ (counts / predicted))
            new = np.clip(new, 0.0, None)
            theta = new / new.sum()
        result = expectation_maximization(
            simple_transition, counts, max_iterations=25, tolerance=0.0
        )
        np.testing.assert_array_equal(result.estimate, theta)


class TestSmoothers:
    def test_grid_smoother_preserves_mass(self):
        smoother = make_grid_smoother(4)
        theta = np.random.default_rng(0).dirichlet(np.ones(16))
        smoothed = smoother(theta)
        assert smoothed.sum() == pytest.approx(1.0, abs=1e-9)

    def test_grid_smoother_reduces_peaks(self):
        smoother = make_grid_smoother(3, strength=1.0)
        theta = np.zeros(9)
        theta[4] = 1.0
        smoothed = smoother(theta)
        assert smoothed[4] < 1.0
        assert smoothed.sum() == pytest.approx(1.0)

    def test_grid_smoother_strength_zero_is_identity(self):
        smoother = make_grid_smoother(3, strength=0.0)
        theta = np.random.default_rng(1).dirichlet(np.ones(9))
        np.testing.assert_allclose(smoother(theta), theta)

    def test_grid_smoother_invalid_strength(self):
        with pytest.raises(ValueError):
            make_grid_smoother(3, strength=1.5)

    def test_line_smoother_preserves_mass(self):
        smoother = make_line_smoother(10)
        theta = np.random.default_rng(2).dirichlet(np.ones(10))
        assert smoother(theta).sum() == pytest.approx(1.0, abs=1e-9)

    def test_line_smoother_uniform_fixed_point(self):
        smoother = make_line_smoother(6, strength=1.0)
        uniform = np.full(6, 1.0 / 6)
        np.testing.assert_allclose(smoother(uniform), uniform)

    def test_line_smoother_wrong_length_rejected(self):
        smoother = make_line_smoother(5)
        with pytest.raises(ValueError):
            smoother(np.ones(4) / 4)


class TestMatrixInversion:
    def test_recovers_truth_without_noise(self, simple_transition):
        truth = np.array([0.4, 0.3, 0.2, 0.1])
        observed = truth @ simple_transition
        estimate = matrix_inversion_estimate(simple_transition, observed * 1000)
        np.testing.assert_allclose(estimate, truth, atol=1e-4)

    def test_estimate_is_distribution(self, simple_transition):
        counts = np.array([80.0, 10.0, 5.0, 5.0])
        estimate = matrix_inversion_estimate(simple_transition, counts)
        assert estimate.sum() == pytest.approx(1.0)
        assert np.all(estimate >= 0)

    def test_zero_counts_give_uniform(self, simple_transition):
        np.testing.assert_allclose(matrix_inversion_estimate(simple_transition, np.zeros(4)), 0.25)

    def test_wrong_length_rejected(self, simple_transition):
        with pytest.raises(ValueError):
            matrix_inversion_estimate(simple_transition, np.zeros(3))


class TestProjectToSimplex:
    def test_already_on_simplex_unchanged(self):
        vec = np.array([0.2, 0.3, 0.5])
        np.testing.assert_allclose(project_to_simplex(vec), vec, atol=1e-12)

    def test_projection_sums_to_one(self):
        vec = np.array([1.5, -0.3, 0.1])
        projected = project_to_simplex(vec)
        assert projected.sum() == pytest.approx(1.0)
        assert np.all(projected >= 0)

    def test_negative_vector(self):
        projected = project_to_simplex(np.array([-1.0, -2.0, -3.0]))
        assert projected.sum() == pytest.approx(1.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            project_to_simplex(np.array([]))

    @given(
        st.lists(st.floats(min_value=-5, max_value=5, allow_nan=False), min_size=1, max_size=20)
    )
    @settings(max_examples=60, deadline=None)
    def test_projection_properties(self, values):
        """Property: the projection is always a valid distribution and is idempotent."""
        vec = np.array(values)
        projected = project_to_simplex(vec)
        assert projected.sum() == pytest.approx(1.0, abs=1e-6)
        assert np.all(projected >= -1e-12)
        np.testing.assert_allclose(project_to_simplex(projected), projected, atol=1e-9)
