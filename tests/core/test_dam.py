"""Tests for repro.core.dam — the discrete Disk Area Mechanism and DAM-NS."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings

import strategies
from repro.core.dam import DiscreteDAM, DiscreteDAMNoShrink, DiskOutputDomain, build_disk_transition
from repro.core.domain import GridSpec, SpatialDomain
from repro.core.geometry import disk_offset_array
from repro.metrics.divergence import chi_square_statistic
from repro.metrics.wasserstein import wasserstein2_grid


@pytest.fixture(scope="module")
def grid6() -> GridSpec:
    return GridSpec.unit(6)


@pytest.fixture(scope="module")
def dam(grid6) -> DiscreteDAM:
    return DiscreteDAM(grid6, epsilon=3.5, b_hat=2)


class TestDiskOutputDomain:
    def test_contains_input_grid(self):
        domain = DiskOutputDomain.build(5, 2)
        assert domain.contains_input_grid()

    def test_lookup_consistent(self):
        domain = DiskOutputDomain.build(4, 1)
        lookup = domain.index_lookup()
        for index, (col, row) in enumerate(domain.cells):
            assert lookup[(col, row)] == index

    def test_size_grows_with_radius(self):
        assert DiskOutputDomain.build(5, 3).size > DiskOutputDomain.build(5, 1).size


class TestBuildDiskTransition:
    def test_rows_sum_to_one(self, grid6):
        masses = disk_offset_array(2)
        e = math.exp(2.0)
        masses[:, 2] = masses[:, 2] * e + (1 - masses[:, 2])
        transition, _, _ = build_disk_transition(grid6, 2, masses)
        np.testing.assert_allclose(transition.sum(axis=1), 1.0)

    def test_shape(self, grid6):
        masses = disk_offset_array(2)
        transition, domain, _ = build_disk_transition(grid6, 2, masses)
        assert transition.shape == (grid6.n_cells, domain.size)

    def test_invalid_mass_shape_rejected(self, grid6):
        with pytest.raises(ValueError):
            build_disk_transition(grid6, 2, np.zeros((3, 2)))


class TestDamProbabilities:
    def test_p_q_ratio_is_exp_eps(self, dam):
        assert dam.p_hat / dam.q_hat == pytest.approx(math.exp(3.5))

    def test_normalisation_identity(self, dam):
        """S_H * p + S_L * q = 1 (the discrete analogue of Definition 4's condition 2)."""
        assert dam.s_high * dam.p_hat + dam.s_low * dam.q_hat == pytest.approx(1.0)

    def test_transition_max_is_p_hat(self, dam):
        assert dam.transition.max() == pytest.approx(dam.p_hat)

    def test_transition_min_is_q_hat(self, dam):
        assert dam.transition.min() == pytest.approx(dam.q_hat)

    def test_mixed_cells_between_q_and_p(self, dam):
        values = np.unique(np.round(dam.transition, 12))
        assert np.all(values >= dam.q_hat - 1e-12)
        assert np.all(values <= dam.p_hat + 1e-12)

    def test_default_b_hat_uses_radius_rule(self):
        grid = GridSpec.unit(15)
        mech = DiscreteDAM(grid, 3.5)
        from repro.core.radius import grid_radius

        assert mech.b_hat == grid_radius(3.5, 15, 1.0)

    def test_explicit_b_hat_respected(self, grid6):
        assert DiscreteDAM(grid6, 2.0, b_hat=3).b_hat == 3

    def test_invalid_b_hat_rejected(self, grid6):
        with pytest.raises(ValueError):
            DiscreteDAM(grid6, 2.0, b_hat=0)

    def test_invalid_postprocess_rejected(self, grid6):
        with pytest.raises(ValueError):
            DiscreteDAM(grid6, 2.0, postprocess="magic")


class TestLocalDifferentialPrivacy:
    """The core privacy guarantee: the transition probabilities are e^eps-bounded."""

    @pytest.mark.parametrize("epsilon", [0.7, 1.4, 3.5, 5.0])
    def test_ldp_ratio_bounded(self, epsilon):
        grid = GridSpec.unit(5)
        mech = DiscreteDAM(grid, epsilon)
        assert mech.ldp_ratio() <= math.exp(epsilon) * (1 + 1e-9)

    @pytest.mark.parametrize("epsilon", [0.7, 3.5])
    def test_ldp_ratio_bounded_without_shrinkage(self, epsilon):
        grid = GridSpec.unit(5)
        mech = DiscreteDAM(grid, epsilon, use_shrinkage=False)
        assert mech.ldp_ratio() <= math.exp(epsilon) * (1 + 1e-9)

    @given(
        strategies.grid_sides(2, 8),
        strategies.epsilons(),
        strategies.b_hats(),
    )
    @settings(max_examples=20, deadline=None)
    def test_ldp_property(self, d, epsilon, b_hat):
        """Property: every (d, eps, b_hat) combination yields an e^eps-bounded mechanism."""
        mech = DiscreteDAM(GridSpec.unit(d), epsilon, b_hat=b_hat)
        assert mech.ldp_ratio() <= math.exp(epsilon) * (1 + 1e-9)

    def test_rows_share_normalisation(self):
        """Every row must use the same S_H/S_L split, otherwise LDP would break."""
        mech = DiscreteDAM(GridSpec.unit(6), 2.0, b_hat=2)
        row_max = mech.transition.max(axis=1)
        np.testing.assert_allclose(row_max, row_max[0])


class TestSampling:
    def test_reports_within_output_domain(self, dam):
        rng = np.random.default_rng(0)
        cells = rng.integers(0, dam.grid.n_cells, 500)
        reports = dam.privatize_cells(cells, seed=rng)
        assert reports.min() >= 0
        assert reports.max() < dam.output_domain_size()

    def test_sampling_matches_transition_row(self, dam):
        """Chi-square check: empirical report frequencies track the declared row."""
        rng = np.random.default_rng(1)
        cell = 14
        n = 30_000
        reports = dam.privatize_cells(np.full(n, cell), seed=rng)
        observed = np.bincount(reports, minlength=dam.output_domain_size())
        expected = dam.transition[cell] * n
        statistic = chi_square_statistic(observed, expected)
        # dof = number of outputs - 1; allow a generous 1.5x margin.
        assert statistic < 1.5 * dam.output_domain_size()

    def test_invalid_cell_rejected(self, dam):
        with pytest.raises(ValueError):
            dam.privatize_cells(np.array([dam.grid.n_cells]), seed=0)

    def test_deterministic_given_seed(self, dam):
        cells = np.arange(dam.grid.n_cells)
        a = dam.privatize_cells(cells, seed=7)
        b = dam.privatize_cells(cells, seed=7)
        np.testing.assert_array_equal(a, b)


class TestEstimation:
    @pytest.mark.parametrize("postprocess", ["ems", "em", "ls"])
    def test_estimate_is_distribution(self, grid6, postprocess):
        mech = DiscreteDAM(grid6, 3.5, b_hat=1, postprocess=postprocess)
        rng = np.random.default_rng(0)
        pts = np.clip(rng.normal(0.4, 0.15, size=(3000, 2)), 0, 1)
        estimate = mech.run(pts, seed=1).estimate
        assert estimate.flat().sum() == pytest.approx(1.0)
        assert np.all(estimate.flat() >= 0)

    def test_estimate_recovers_concentrated_distribution(self):
        """With a large budget the estimate should concentrate where the data is."""
        grid = GridSpec.unit(5)
        mech = DiscreteDAM(grid, 8.0, b_hat=1)
        rng = np.random.default_rng(2)
        pts = np.clip(rng.normal([0.15, 0.15], 0.05, size=(8000, 2)), 0, 1)
        true = grid.distribution(pts)
        estimate = mech.run(pts, seed=3).estimate
        assert wasserstein2_grid(true, estimate) < 0.08

    def test_more_budget_means_less_error(self):
        grid = GridSpec.unit(5)
        rng = np.random.default_rng(4)
        pts = np.clip(rng.normal([0.3, 0.7], 0.1, size=(6000, 2)), 0, 1)
        true = grid.distribution(pts)
        errors = []
        for eps in (0.7, 2.0, 6.0):
            mech = DiscreteDAM(grid, eps)
            errors.append(wasserstein2_grid(true, mech.run(pts, seed=5).estimate))
        assert errors[0] > errors[2]

    def test_empty_input_gives_uniform(self, dam):
        report = dam.run(np.empty((0, 2)), seed=0)
        np.testing.assert_allclose(report.estimate.flat(), 1.0 / dam.grid.n_cells)

    def test_rectangular_domain_supported(self):
        domain = SpatialDomain(0.0, 2.0, 0.0, 1.0)
        grid = GridSpec(domain, 4)
        mech = DiscreteDAM(grid, 3.0, b_hat=1)
        rng = np.random.default_rng(6)
        pts = np.column_stack([rng.uniform(0, 2, 1000), rng.uniform(0, 1, 1000)])
        estimate = mech.run(pts, seed=7).estimate
        assert estimate.flat().sum() == pytest.approx(1.0)


class TestDamNoShrink:
    def test_name(self):
        mech = DiscreteDAMNoShrink(GridSpec.unit(4), 2.0, b_hat=1)
        assert mech.name == "DAM-NS"

    def test_equivalent_to_flag(self):
        grid = GridSpec.unit(5)
        a = DiscreteDAMNoShrink(grid, 2.0, b_hat=2)
        b = DiscreteDAM(grid, 2.0, b_hat=2, use_shrinkage=False)
        np.testing.assert_allclose(a.transition, b.transition)

    def test_smaller_high_area_than_dam(self):
        grid = GridSpec.unit(5)
        with_shrink = DiscreteDAM(grid, 2.0, b_hat=2)
        without = DiscreteDAM(grid, 2.0, b_hat=2, use_shrinkage=False)
        assert without.s_high < with_shrink.s_high

    def test_ns_flag_rejected_as_kwarg(self):
        # The subclass owns use_shrinkage; passing it again must not crash.
        mech = DiscreteDAMNoShrink(GridSpec.unit(4), 2.0, b_hat=1, use_shrinkage=True)
        assert mech.use_shrinkage is False
