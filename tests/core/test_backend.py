"""``resolve_backend``: one validation gate for every ``backend=`` entry point.

The regression being pinned: backend validation used to be duplicated across
DAM / DAM-NS / HUEM / ``TrajectoryEngine`` / the CLI, so adding a backend (or
improving the error) meant five edits.  Now every entry point must route
through :func:`repro.core.resolve_backend` — each raises the same ValueError
naming the valid backends — and the CLI's argparse ``choices`` are the same
tuples, so the vocabularies cannot drift.
"""

import pytest

from repro.cli import build_parser
from repro.core import VALID_BACKENDS, WALK_BACKENDS, resolve_backend
from repro.core.dam import DiscreteDAM, DiscreteDAMNoShrink
from repro.core.domain import GridSpec
from repro.core.huem import DiscreteHUEM
from repro.trajectory.engine import TrajectoryEngine

GRID = GridSpec.unit(5)


class TestResolveBackend:
    def test_valid_backends_pass_through(self):
        for backend in VALID_BACKENDS:
            assert resolve_backend(backend) == backend
        for backend in WALK_BACKENDS:
            assert resolve_backend(backend, allowed=WALK_BACKENDS) == backend

    def test_error_lists_valid_backends(self):
        with pytest.raises(ValueError) as error:
            resolve_backend("gpu")
        assert "unknown backend 'gpu'" in str(error.value)
        assert "operator, dense, native" in str(error.value)

    def test_walk_backends_exclude_dense(self):
        assert "dense" in VALID_BACKENDS
        with pytest.raises(ValueError, match="operator, native"):
            resolve_backend("dense", allowed=WALK_BACKENDS, what="trajectory backend")

    @pytest.mark.parametrize(
        "build",
        [
            pytest.param(lambda: DiscreteDAM(GRID, 2.0, backend="gpu"), id="dam"),
            pytest.param(
                lambda: DiscreteDAMNoShrink(GRID, 2.0, backend="gpu"), id="dam-ns"
            ),
            pytest.param(lambda: DiscreteHUEM(GRID, 2.0, backend="gpu"), id="huem"),
            pytest.param(
                lambda: TrajectoryEngine.build(GRID, 2.0, backend="gpu"),
                id="trajectory",
            ),
        ],
    )
    def test_every_entry_point_rejects_unknown_backend(self, build):
        with pytest.raises(ValueError, match="valid backends:"):
            build()

    def test_trajectory_engine_rejects_dense(self):
        """The walk has no dense tier; the mechanism vocabulary must not leak in."""
        with pytest.raises(ValueError, match="unknown trajectory backend 'dense'"):
            TrajectoryEngine.build(GRID, 2.0, backend="dense")

    @pytest.mark.parametrize("command", ["estimate", "query", "stream", "serve"])
    def test_cli_backend_choices_are_the_shared_tuple(self, command, capsys):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args([command, "--backend", "gpu"])
        message = capsys.readouterr().err
        assert "invalid choice: 'gpu'" in message
        for backend in VALID_BACKENDS:
            assert backend in message

    def test_cli_trajectory_choices_are_the_walk_tuple(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["trajectory", "--backend", "dense"])
        assert "invalid choice: 'dense'" in capsys.readouterr().err
