"""Tests for repro.core.estimator — the SpatialMechanism protocol plumbing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.dam import DiscreteDAM
from repro.core.domain import GridDistribution, GridSpec
from repro.core.estimator import SpatialMechanism, TransitionMatrixMechanism


class IdentityMechanism(TransitionMatrixMechanism):
    """A trivial mechanism that reports the true cell — useful for protocol tests."""

    name = "Identity"

    def __init__(self, grid: GridSpec) -> None:
        super().__init__(grid, epsilon=1.0)
        self._set_transition(np.eye(grid.n_cells))

    def estimate(self, noisy_counts: np.ndarray, n_users: int) -> GridDistribution:
        counts = np.asarray(noisy_counts, dtype=float)
        if counts.sum() == 0:
            return GridDistribution.uniform(self.grid)
        return GridDistribution.from_flat(self.grid, counts / counts.sum())


@pytest.fixture
def identity(unit_grid5) -> IdentityMechanism:
    return IdentityMechanism(unit_grid5)


class TestProtocol:
    def test_run_round_trip(self, identity, clustered_points, unit_grid5):
        report = identity.run(clustered_points, seed=0)
        true = unit_grid5.distribution(clustered_points)
        np.testing.assert_allclose(report.estimate.flat(), true.flat(), atol=1e-12)

    def test_run_cells(self, identity):
        cells = np.array([0, 0, 1, 24])
        report = identity.run_cells(cells, seed=0)
        assert report.n_users == 4
        assert report.noisy_counts[0] == 2

    def test_aggregate_counts(self, identity):
        counts = identity.aggregate(np.array([0, 0, 3]))
        assert counts[0] == 2 and counts[3] == 1

    def test_aggregate_rejects_out_of_range(self, identity):
        with pytest.raises(ValueError):
            identity.aggregate(np.array([identity.output_domain_size()]))

    def test_privatize_points_buckets_first(self, identity, unit_grid5):
        points = np.array([[0.05, 0.05], [0.95, 0.95]])
        reports = identity.privatize_cells(unit_grid5.point_to_cell(points), seed=0)
        np.testing.assert_array_equal(reports, [0, 24])

    def test_repr_contains_name(self, identity):
        assert "IdentityMechanism" in repr(identity)

    def test_abstract_class_cannot_instantiate(self, unit_grid5):
        with pytest.raises(TypeError):
            SpatialMechanism(unit_grid5, 1.0)  # type: ignore[abstract]


class TestTransitionMatrixMechanism:
    def test_transition_not_built_raises(self, unit_grid5):
        class Incomplete(TransitionMatrixMechanism):
            def estimate(self, noisy_counts, n_users):  # pragma: no cover
                raise NotImplementedError

        mech = Incomplete(unit_grid5, 1.0)
        with pytest.raises(RuntimeError):
            _ = mech.transition

    def test_set_transition_validates_rows(self, unit_grid5):
        class Broken(TransitionMatrixMechanism):
            def __init__(self, grid):
                super().__init__(grid, 1.0)
                bad = np.full((grid.n_cells, 4), 0.3)
                self._set_transition(bad)

            def estimate(self, noisy_counts, n_users):  # pragma: no cover
                raise NotImplementedError

        with pytest.raises(ValueError):
            Broken(unit_grid5)

    def test_set_transition_validates_row_count(self, unit_grid5):
        class WrongRows(TransitionMatrixMechanism):
            def __init__(self, grid):
                super().__init__(grid, 1.0)
                self._set_transition(np.eye(grid.n_cells - 1))

            def estimate(self, noisy_counts, n_users):  # pragma: no cover
                raise NotImplementedError

        with pytest.raises(ValueError):
            WrongRows(unit_grid5)

    def test_privatize_rejects_out_of_range_cell(self, identity):
        with pytest.raises(ValueError):
            identity.privatize_cells(np.array([-1]), seed=0)

    def test_ldp_ratio_identity_is_infinite(self, identity):
        # The identity "mechanism" offers no privacy at all.
        assert identity.ldp_ratio() == float("inf")

    def test_ldp_ratio_of_dam_finite(self, unit_grid5):
        assert np.isfinite(DiscreteDAM(unit_grid5, 2.0).ldp_ratio())

    def test_ldp_ratio_mixed_zero_positive_column_is_infinite(self):
        """Regression: a column with a zero in one row and a positive entry in another
        is an infinite probability ratio — a hard ε-LDP violation.  The audit used to
        drop every column containing any zero and report a finite (even compliant!)
        ratio for such mechanisms."""

        class Leaky(TransitionMatrixMechanism):
            name = "Leaky"

            def __init__(self, grid: GridSpec) -> None:
                super().__init__(grid, epsilon=1.0)
                matrix = np.zeros((grid.n_cells, 3))
                # Every row keeps 0.5 on output 0; output 1 is reachable only from
                # cell 0 and output 2 only from the other cells.
                matrix[:, 0] = 0.5
                matrix[0, 1] = 0.5
                matrix[1:, 2] = 0.5
                self._set_transition(matrix)

            def estimate(self, noisy_counts, n_users):  # pragma: no cover
                raise NotImplementedError

        assert Leaky(GridSpec.unit(2)).ldp_ratio() == float("inf")

    def test_ldp_ratio_all_zero_column_ignored(self):
        """A column that is zero in every row carries no information and must not
        poison the audit with a 0/0."""

        class Padded(TransitionMatrixMechanism):
            name = "Padded"

            def __init__(self, grid: GridSpec) -> None:
                super().__init__(grid, epsilon=1.0)
                matrix = np.zeros((grid.n_cells, grid.n_cells + 1))
                matrix[:, :-1] = np.full((grid.n_cells, grid.n_cells), 1.0 / grid.n_cells)
                self._set_transition(matrix)

            def estimate(self, noisy_counts, n_users):  # pragma: no cover
                raise NotImplementedError

        assert Padded(GridSpec.unit(2)).ldp_ratio() == pytest.approx(1.0)

    def test_set_transition_clears_installed_operator(self, unit_grid5):
        """Installing a dense matrix after an operator must fully switch backends,
        otherwise sampling would keep using the stale operator while EM uses the
        new matrix."""
        mech = DiscreteDAM(unit_grid5, 2.0, b_hat=1, backend="operator")
        assert mech.operator is not None
        mech._set_transition(np.eye(unit_grid5.n_cells))
        assert mech.operator is None
        reports = mech.privatize_cells(np.array([0, 7, 24]), seed=0)
        np.testing.assert_array_equal(reports, [0, 7, 24])

    def test_grouped_sampling_matches_per_user(self, unit_grid5):
        """Sampling users grouped by cell must be distributionally identical to the row."""
        mech = DiscreteDAM(unit_grid5, 5.0, b_hat=1)
        cells = np.array([3] * 2000 + [17] * 2000)
        reports = mech.privatize_cells(cells, seed=0)
        assert reports.shape == (4000,)
        # Reports for the two groups must differ in distribution (different rows).
        first = np.bincount(reports[:2000], minlength=mech.output_domain_size())
        second = np.bincount(reports[2000:], minlength=mech.output_domain_size())
        assert np.argmax(first) != np.argmax(second)
