"""Tests for repro.core.domain."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

import strategies
from repro.core.domain import (
    GridDistribution,
    GridSpec,
    SpatialDomain,
    marginals,
    outer_product_distribution,
)


class TestSpatialDomain:
    def test_unit_square(self):
        dom = SpatialDomain.unit()
        assert dom.width == 1.0
        assert dom.height == 1.0
        assert dom.side_length == 1.0
        assert dom.area == 1.0

    def test_rectangle_side_length_is_longest(self):
        dom = SpatialDomain(0, 2, 0, 1)
        assert dom.side_length == 2.0

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError):
            SpatialDomain(1.0, 0.0, 0.0, 1.0)

    def test_contains(self):
        dom = SpatialDomain(0, 1, 0, 1)
        mask = dom.contains(np.array([[0.5, 0.5], [1.5, 0.5], [0.0, 1.0]]))
        np.testing.assert_array_equal(mask, [True, False, True])

    def test_clip(self):
        dom = SpatialDomain(0, 1, 0, 1)
        clipped = dom.clip(np.array([[2.0, -1.0]]))
        np.testing.assert_allclose(clipped, [[1.0, 0.0]])

    def test_filter(self):
        dom = SpatialDomain(0, 1, 0, 1)
        pts = dom.filter(np.array([[0.5, 0.5], [2.0, 2.0]]))
        assert pts.shape == (1, 2)

    def test_normalise_denormalise_roundtrip(self):
        dom = SpatialDomain(-87.9, -87.5, 41.6, 42.0)
        pts = np.array([[-87.7, 41.8], [-87.9, 41.6]])
        np.testing.assert_allclose(dom.denormalise(dom.normalise(pts)), pts, atol=1e-12)

    def test_normalise_maps_into_unit_square(self):
        dom = SpatialDomain(-5, 5, -5, 5)
        rng = np.random.default_rng(0)
        pts = rng.uniform(-5, 5, size=(100, 2))
        unit = dom.normalise(pts)
        assert unit.min() >= 0.0 and unit.max() <= 1.0

    def test_from_points(self):
        pts = np.array([[0.0, 1.0], [2.0, 3.0]])
        dom = SpatialDomain.from_points(pts)
        assert dom.bounds == (0.0, 2.0, 1.0, 3.0)

    def test_from_points_empty_rejected(self):
        with pytest.raises(ValueError):
            SpatialDomain.from_points(np.empty((0, 2)))

    def test_from_points_degenerate_gets_width(self):
        dom = SpatialDomain.from_points(np.array([[1.0, 1.0], [1.0, 1.0]]))
        assert dom.width > 0 and dom.height > 0

    def test_from_points_padding(self):
        dom = SpatialDomain.from_points(np.array([[0.0, 0.0], [1.0, 1.0]]), pad=0.5)
        assert dom.bounds == (-0.5, 1.5, -0.5, 1.5)

    def test_from_points_relative_padding(self):
        dom = SpatialDomain.from_points(np.array([[0.0, 0.0], [2.0, 1.0]]), relative_pad=0.25)
        # grow = 0.25 * max extent = 0.5 on every side.
        assert dom.bounds == pytest.approx((-0.5, 2.5, -0.5, 1.5))

    def test_from_points_negative_pad_rejected(self):
        pts = np.array([[0.0, 0.0], [1.0, 1.0]])
        with pytest.raises(ValueError):
            SpatialDomain.from_points(pts, pad=-1.0)
        with pytest.raises(ValueError):
            SpatialDomain.from_points(pts, relative_pad=-0.1)

    def test_from_points_large_projected_coordinates(self):
        """Regression: an absolute 1e-9 pad underflows at projected-coordinate scale
        (x + 1e-9 == x for x ~ 1e9 in float64); the relative pad must not."""
        pts = np.array([[4.5e9, 4.5e9], [4.5e9 + 100.0, 4.5e9 + 80.0]])
        dom = SpatialDomain.from_points(pts, relative_pad=1e-3)
        assert dom.x_min < pts[:, 0].min() and dom.x_max > pts[:, 0].max()
        assert dom.y_min < pts[:, 1].min() and dom.y_max > pts[:, 1].max()

    def test_from_points_degenerate_large_coordinates(self):
        """Regression: the degenerate-axis bump used to be an absolute 1e-9, which
        vanishes at x ~ 1e9 and produced a zero-width (rejected) domain."""
        pts = np.full((3, 2), 2.5e9)
        dom = SpatialDomain.from_points(pts)
        assert dom.width > 0 and dom.height > 0
        assert dom.contains(pts).all()


class TestGridSpec:
    def test_n_cells(self):
        assert GridSpec.unit(4).n_cells == 16

    def test_cell_side(self):
        grid = GridSpec(SpatialDomain(0, 2, 0, 2), 4)
        assert grid.cell_side == pytest.approx(0.5)

    def test_point_to_cell_corners(self):
        grid = GridSpec.unit(2)
        cells = grid.point_to_cell(np.array([[0.1, 0.1], [0.9, 0.1], [0.1, 0.9], [0.9, 0.9]]))
        np.testing.assert_array_equal(cells, [0, 1, 2, 3])

    def test_rowcol_roundtrip(self):
        grid = GridSpec.unit(7)
        flat = np.arange(grid.n_cells)
        rows, cols = grid.cell_to_rowcol(flat)
        np.testing.assert_array_equal(grid.rowcol_to_cell(rows, cols), flat)

    def test_histogram_matches_point_to_cell(self):
        grid = GridSpec.unit(3)
        rng = np.random.default_rng(1)
        pts = rng.random((200, 2))
        counts = grid.histogram(pts)
        cells = grid.point_to_cell(pts)
        np.testing.assert_array_equal(
            counts.reshape(-1), np.bincount(cells, minlength=grid.n_cells)
        )

    def test_iter_cells_row_major(self):
        grid = GridSpec.unit(2)
        cells = list(grid.iter_cells())
        assert cells == [(0, 0, 0), (1, 0, 1), (2, 1, 0), (3, 1, 1)]

    def test_with_side(self):
        grid = GridSpec.unit(3)
        assert grid.with_side(10).d == 10
        assert grid.with_side(10).domain == grid.domain

    def test_cell_centers_match_histogram_layout(self):
        grid = GridSpec.unit(3)
        centers = grid.cell_centers()
        cells = grid.point_to_cell(centers)
        np.testing.assert_array_equal(cells, np.arange(9))

    def test_invalid_d_rejected(self):
        with pytest.raises(ValueError):
            GridSpec(SpatialDomain.unit(), 0)


class TestGridDistribution:
    def test_normalisation_enforced(self, unit_grid5):
        dist = GridDistribution(unit_grid5, np.full((5, 5), 2.0))
        assert dist.flat().sum() == pytest.approx(1.0)

    def test_flat_vector_accepted(self, unit_grid5):
        dist = GridDistribution(unit_grid5, np.full(25, 1.0 / 25))
        assert dist.probabilities.shape == (5, 5)

    def test_wrong_shape_rejected(self, unit_grid5):
        with pytest.raises(ValueError):
            GridDistribution(unit_grid5, np.full((4, 4), 1.0 / 16))

    def test_negative_rejected(self, unit_grid5):
        probs = np.full((5, 5), 1.0 / 25)
        probs[0, 0] = -0.1
        with pytest.raises(ValueError):
            GridDistribution(unit_grid5, probs)

    def test_zero_sum_rejected(self, unit_grid5):
        with pytest.raises(ValueError):
            GridDistribution(unit_grid5, np.zeros((5, 5)))

    def test_uniform(self, unit_grid5):
        dist = GridDistribution.uniform(unit_grid5)
        np.testing.assert_allclose(dist.probabilities, 1.0 / 25)

    def test_from_counts(self, unit_grid5):
        counts = np.zeros((5, 5))
        counts[2, 3] = 10
        dist = GridDistribution.from_counts(unit_grid5, counts)
        assert dist.probabilities[2, 3] == pytest.approx(1.0)

    def test_expected_counts(self, unit_grid5):
        dist = GridDistribution.uniform(unit_grid5)
        np.testing.assert_allclose(dist.expected_counts(250), 10.0)

    def test_sample_points_land_in_right_cells(self, unit_grid5, corner_distribution):
        rng = np.random.default_rng(0)
        pts = corner_distribution.sample_points(200, rng)
        cells = unit_grid5.point_to_cell(pts)
        assert np.all(cells == 0)

    def test_sample_points_count(self, unit_grid5):
        rng = np.random.default_rng(0)
        assert GridDistribution.uniform(unit_grid5).sample_points(37, rng).shape == (37, 2)

    def test_total_variation_identity(self, clustered_distribution):
        assert clustered_distribution.total_variation(clustered_distribution) == 0.0

    def test_total_variation_bounds(self, clustered_distribution, uniform_distribution):
        tv = clustered_distribution.total_variation(uniform_distribution)
        assert 0.0 < tv <= 1.0

    def test_incompatible_grids_rejected(self, clustered_distribution):
        other = GridDistribution.uniform(GridSpec.unit(4))
        with pytest.raises(ValueError):
            clustered_distribution.total_variation(other)

    @given(strategies.grid_sides(1, 8), strategies.seeds(1000))
    @settings(max_examples=25, deadline=None)
    def test_empirical_distribution_always_normalised(self, d, seed):
        rng = np.random.default_rng(seed)
        grid = GridSpec.unit(d)
        pts = rng.random((rng.integers(1, 200), 2))
        dist = grid.distribution(pts)
        assert dist.flat().sum() == pytest.approx(1.0)
        assert np.all(dist.flat() >= 0)


class TestFromNormalized:
    """The trusted constructor behind zero-copy shared-memory serving."""

    def test_adopts_the_exact_array(self, unit_grid5):
        rng = np.random.default_rng(3)
        probs = rng.dirichlet(np.ones(25)).reshape(5, 5)
        dist = GridDistribution.from_normalized(unit_grid5, probs)
        # Bit-identity: the array is adopted as-is, not copied or re-normalised
        # (the regular constructor's clip+divide perturbs the last bits, which
        # is exactly what this path exists to avoid).
        assert dist.probabilities is probs
        expected = np.zeros((6, 6))
        expected[1:, 1:] = probs.cumsum(axis=0).cumsum(axis=1)
        np.testing.assert_array_equal(dist.cumulative(), expected)

    def test_installs_the_provided_cumulative(self, unit_grid5):
        rng = np.random.default_rng(4)
        reference = GridDistribution(unit_grid5, rng.dirichlet(np.ones(25)).reshape(5, 5))
        table = reference.cumulative()
        dist = GridDistribution.from_normalized(
            unit_grid5, reference.probabilities, cumulative=table
        )
        assert dist.cumulative() is table  # cache installed, nothing recomputed

    def test_shape_and_dtype_validated(self, unit_grid5):
        with pytest.raises(ValueError, match="float64"):
            GridDistribution.from_normalized(
                unit_grid5, np.full((5, 5), 1 / 25, dtype=np.float32)
            )
        with pytest.raises(ValueError):
            GridDistribution.from_normalized(unit_grid5, np.full((4, 4), 1 / 16))
        with pytest.raises(ValueError):
            GridDistribution.from_normalized(
                unit_grid5,
                np.full((5, 5), 1 / 25),
                cumulative=np.zeros((5, 5)),
            )


class TestMarginals:
    def test_marginals_sum_to_one(self, clustered_distribution):
        x_marg, y_marg = marginals(clustered_distribution)
        assert x_marg.sum() == pytest.approx(1.0)
        assert y_marg.sum() == pytest.approx(1.0)

    def test_outer_product_reconstruction(self, unit_grid5):
        x = np.array([0.1, 0.2, 0.3, 0.2, 0.2])
        y = np.array([0.5, 0.1, 0.1, 0.2, 0.1])
        joint = outer_product_distribution(unit_grid5, x, y)
        x_back, y_back = marginals(joint)
        np.testing.assert_allclose(x_back, x, atol=1e-12)
        np.testing.assert_allclose(y_back, y, atol=1e-12)

    def test_outer_product_independent_distribution_exact(self, unit_grid5):
        rng = np.random.default_rng(0)
        x = rng.dirichlet(np.ones(5))
        y = rng.dirichlet(np.ones(5))
        joint = outer_product_distribution(unit_grid5, x, y)
        assert joint.probabilities[2, 3] == pytest.approx(y[2] * x[3])

    def test_outer_product_wrong_shape_rejected(self, unit_grid5):
        with pytest.raises(ValueError):
            outer_product_distribution(unit_grid5, np.ones(4) / 4, np.ones(5) / 5)

    def test_outer_product_zero_marginal_falls_back_to_uniform(self, unit_grid5):
        joint = outer_product_distribution(unit_grid5, np.zeros(5), np.ones(5) / 5)
        x_back, _ = marginals(joint)
        np.testing.assert_allclose(x_back, 0.2)


class TestBoundaryProperties:
    """Property tests: bucketisation must always land in-grid, even for boundary
    points, data-derived domains, and planet-scale projected coordinates."""

    @given(
        strategies.grid_sides(1, 40),
        st.sampled_from(strategies.COORDINATE_OFFSETS),
        strategies.seeds(),
    )
    @settings(max_examples=60, deadline=None)
    def test_boundary_points_always_land_in_grid(self, d, offset, seed):
        rng = np.random.default_rng(seed)
        pts = offset + rng.random((50, 2)) * rng.uniform(1e-6, 1e3)
        dom = SpatialDomain.from_points(pts, relative_pad=1e-9)
        grid = GridSpec(dom, d)
        corners = np.array(
            [
                [dom.x_min, dom.y_min],
                [dom.x_max, dom.y_max],
                [dom.x_min, dom.y_max],
                [dom.x_max, dom.y_min],
            ]
        )
        cells = grid.point_to_cell(np.vstack([pts, corners]))
        assert cells.min() >= 0
        assert cells.max() < grid.n_cells

    @given(
        strategies.grid_sides(1, 20),
        strategies.seeds(),
    )
    @settings(max_examples=40, deadline=None)
    def test_exact_upper_boundary_maps_to_last_cell(self, d, seed):
        rng = np.random.default_rng(seed)
        grid = GridSpec.unit(d)
        on_edge = np.column_stack([np.ones(5), rng.random(5)])
        rows, cols = grid.cell_to_rowcol(grid.point_to_cell(on_edge))
        assert np.all(cols == d - 1)
        assert np.all((rows >= 0) & (rows < d))
