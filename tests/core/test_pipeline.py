"""Tests for repro.core.pipeline — Algorithm 1 end-to-end."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.domain import SpatialDomain
from repro.core.pipeline import DAMPipeline, estimate_spatial_distribution
from repro.metrics.wasserstein import wasserstein2_grid


@pytest.fixture
def city_points(rng) -> np.ndarray:
    """A synthetic 'city': two hot spots inside a lon/lat-like box."""
    downtown = rng.normal([-87.65, 41.85], [0.01, 0.01], size=(3000, 2))
    suburb = rng.normal([-87.60, 41.75], [0.02, 0.015], size=(1500, 2))
    return np.vstack([downtown, suburb])


@pytest.fixture
def city_domain() -> SpatialDomain:
    return SpatialDomain(-87.70, -87.55, 41.70, 41.90, name="test-city")


class TestDAMPipeline:
    def test_run_returns_complete_result(self, city_points, city_domain):
        pipeline = DAMPipeline(city_domain, d=6, epsilon=3.5)
        result = pipeline.run(city_points, seed=0)
        assert result.estimate.flat().sum() == pytest.approx(1.0)
        assert result.true_distribution.flat().sum() == pytest.approx(1.0)
        # Points outside the analysis domain are dropped before reporting.
        assert result.n_users == city_points.shape[0] - result.info["dropped_points"]
        assert result.n_users > 0.9 * city_points.shape[0]
        assert result.mechanism == "DAM"
        assert result.b_hat >= 1
        assert result.info["epsilon"] == 3.5

    def test_points_outside_domain_dropped(self, city_domain):
        points = np.array([[-87.6, 41.8], [0.0, 0.0]])
        pipeline = DAMPipeline(city_domain, d=4, epsilon=2.0)
        result = pipeline.run(points, seed=0)
        assert result.n_users == 1
        assert result.info["dropped_points"] == 1

    @pytest.mark.parametrize("mechanism", ["dam", "dam-ns", "huem"])
    def test_all_mechanism_choices(self, city_points, city_domain, mechanism):
        pipeline = DAMPipeline(city_domain, d=5, epsilon=3.5, mechanism=mechanism)
        result = pipeline.run(city_points[:2000], seed=1)
        assert result.estimate.flat().sum() == pytest.approx(1.0)

    def test_unknown_mechanism_rejected(self, city_domain):
        with pytest.raises(ValueError):
            DAMPipeline(city_domain, d=5, epsilon=2.0, mechanism="geo")

    def test_b_hat_override(self, city_domain):
        pipeline = DAMPipeline(city_domain, d=8, epsilon=3.5, b_hat=3)
        assert pipeline.b_hat == 3
        assert pipeline.mechanism.b_hat == 3

    def test_estimate_tracks_truth_for_large_budget(self, city_points, city_domain):
        pipeline = DAMPipeline(city_domain, d=5, epsilon=8.0)
        result = pipeline.run(city_points, seed=2)
        w2 = wasserstein2_grid(result.true_distribution, result.estimate)
        # Coordinates span ~0.15 degrees; the recovered map should be close on that scale.
        assert w2 < 0.02

    def test_invalid_points_shape_rejected(self, city_domain):
        pipeline = DAMPipeline(city_domain, d=4, epsilon=2.0)
        with pytest.raises(ValueError):
            pipeline.run(np.zeros((5, 3)), seed=0)

    def test_deterministic_given_seed(self, city_points, city_domain):
        pipeline = DAMPipeline(city_domain, d=5, epsilon=3.5)
        a = pipeline.run(city_points, seed=42)
        b = pipeline.run(city_points, seed=42)
        np.testing.assert_allclose(a.estimate.flat(), b.estimate.flat())


class TestEstimateSpatialDistribution:
    def test_quickstart_call(self, rng):
        points = np.clip(rng.normal(0.5, 0.1, size=(4000, 2)), 0, 1)
        result = estimate_spatial_distribution(points, epsilon=3.0, d=6, seed=0)
        assert result.estimate.probabilities.shape == (6, 6)

    def test_domain_defaults_to_bounding_box(self, rng):
        points = rng.uniform([10, 20], [11, 22], size=(1000, 2))
        result = estimate_spatial_distribution(points, epsilon=2.0, d=4, seed=0)
        assert result.n_users == 1000

    def test_explicit_domain_used(self, rng):
        points = rng.random((500, 2))
        domain = SpatialDomain(0, 2, 0, 2)
        result = estimate_spatial_distribution(points, epsilon=2.0, d=4, domain=domain, seed=0)
        # All points lie in the lower-left quadrant of the explicit domain.
        assert result.true_distribution.probabilities[2:, :].sum() == pytest.approx(0.0)

    def test_mechanism_selection(self, rng):
        points = rng.random((500, 2))
        result = estimate_spatial_distribution(points, epsilon=2.0, d=4, mechanism="huem", seed=0)
        assert result.mechanism == "HUEM"
