"""Tests for repro.core.huem — the discrete Hybrid Uniform-Exponential Mechanism."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.dam import DiscreteDAM
from repro.core.domain import GridSpec
from repro.core.huem import DiscreteHUEM, huem_cell_masses
from repro.metrics.wasserstein import wasserstein2_grid


@pytest.fixture(scope="module")
def grid6() -> GridSpec:
    return GridSpec.unit(6)


class TestHuemCellMasses:
    def test_masses_within_ldp_range(self):
        for eps in (0.7, 2.1, 3.5):
            masses = huem_cell_masses(3, eps)
            assert masses[:, 2].min() >= 1.0 - 1e-9
            assert masses[:, 2].max() <= math.exp(eps) + 1e-9

    def test_center_cell_has_largest_mass(self):
        masses = huem_cell_masses(3, 2.0)
        center = masses[(masses[:, 0] == 0) & (masses[:, 1] == 0), 2][0]
        assert center == masses[:, 2].max()

    def test_mass_decreases_with_distance(self):
        """Cells farther from the centre get (weakly) smaller masses — the wave decays."""
        masses = huem_cell_masses(4, 3.0)
        radii = np.hypot(masses[:, 0], masses[:, 1])
        order = np.argsort(radii)
        sorted_masses = masses[order, 2]
        # Allow small non-monotonicity from the sub-sample integration of border cells.
        assert np.all(np.diff(sorted_masses) <= 0.05)

    def test_subsamples_converge(self):
        mid = huem_cell_masses(3, 2.0, subsamples=9)
        fine = huem_cell_masses(3, 2.0, subsamples=21)
        assert mid.shape == fine.shape
        # Once the integration is reasonably fine, further refinement barely moves the
        # masses (the single-midpoint rule, by contrast, overestimates the peak).
        np.testing.assert_allclose(mid[:, 2], fine[:, 2], rtol=0.03)
        coarse_center = huem_cell_masses(3, 2.0, subsamples=1)
        center_mask = (coarse_center[:, 0] == 0) & (coarse_center[:, 1] == 0)
        assert coarse_center[center_mask, 2][0] >= fine[center_mask, 2][0]

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ValueError):
            huem_cell_masses(0, 2.0)
        with pytest.raises(ValueError):
            huem_cell_masses(2, 2.0, subsamples=0)


class TestHuemPrivacy:
    @pytest.mark.parametrize("epsilon", [0.7, 2.1, 3.5, 5.0])
    def test_ldp_ratio_bounded(self, grid6, epsilon):
        mech = DiscreteHUEM(grid6, epsilon, b_hat=2)
        assert mech.ldp_ratio() <= math.exp(epsilon) * (1 + 1e-9)

    def test_rows_sum_to_one(self, grid6):
        mech = DiscreteHUEM(grid6, 2.0, b_hat=2)
        np.testing.assert_allclose(mech.transition.sum(axis=1), 1.0)

    def test_rows_share_normalisation(self, grid6):
        mech = DiscreteHUEM(grid6, 2.0, b_hat=2)
        row_max = mech.transition.max(axis=1)
        np.testing.assert_allclose(row_max, row_max[0])


class TestHuemBehaviour:
    def test_output_domain_matches_dam(self, grid6):
        huem = DiscreteHUEM(grid6, 3.5, b_hat=2)
        dam = DiscreteDAM(grid6, 3.5, b_hat=2)
        assert huem.output_domain_size() == dam.output_domain_size()

    def test_probability_peaks_at_true_cell(self, grid6):
        mech = DiscreteHUEM(grid6, 3.5, b_hat=2)
        # For an interior input cell the most likely report is the cell itself.
        cell = grid6.rowcol_to_cell(3, 3)
        row = mech.transition[cell]
        lookup = mech.output_domain.index_lookup()
        assert int(np.argmax(row)) == lookup[(3, 3)]

    def test_estimation_recovers_hotspot(self):
        grid = GridSpec.unit(5)
        mech = DiscreteHUEM(grid, 7.0, b_hat=1)
        rng = np.random.default_rng(0)
        pts = np.clip(rng.normal([0.8, 0.2], 0.06, size=(6000, 2)), 0, 1)
        true = grid.distribution(pts)
        estimate = mech.run(pts, seed=1).estimate
        assert wasserstein2_grid(true, estimate) < 0.1

    def test_default_radius_matches_dam_default(self):
        grid = GridSpec.unit(10)
        assert DiscreteHUEM(grid, 3.5).b_hat == DiscreteDAM(grid, 3.5).b_hat

    @pytest.mark.parametrize("postprocess", ["ems", "em", "ls"])
    def test_postprocess_modes(self, grid6, postprocess):
        mech = DiscreteHUEM(grid6, 3.5, b_hat=1, postprocess=postprocess)
        rng = np.random.default_rng(2)
        pts = rng.random((1500, 2))
        estimate = mech.run(pts, seed=3).estimate
        assert estimate.flat().sum() == pytest.approx(1.0)

    def test_invalid_postprocess_rejected(self, grid6):
        with pytest.raises(ValueError):
            DiscreteHUEM(grid6, 2.0, postprocess="bogus")

    def test_invalid_b_hat_rejected(self, grid6):
        with pytest.raises(ValueError):
            DiscreteHUEM(grid6, 2.0, b_hat=0)

    def test_huem_is_less_concentrated_than_dam(self, grid6):
        """DAM puts strictly more probability on the true cell than HUEM at equal eps/b.

        DAM is the SAM that maximises the report probability gap (Theorem V.2); HUEM
        spreads the in-disk mass exponentially so its peak at the true cell is lower
        than DAM's p_hat... actually HUEM's peak equals q*e^eps which exceeds DAM's
        p_hat; what distinguishes DAM is the *total* high-probability mass near the
        truth.  We check the disk-mass comparison instead.
        """
        huem = DiscreteHUEM(grid6, 3.5, b_hat=2)
        dam = DiscreteDAM(grid6, 3.5, b_hat=2)
        cell = grid6.rowcol_to_cell(3, 3)
        lookup_dam = dam.output_domain.index_lookup()
        lookup_huem = huem.output_domain.index_lookup()
        # Probability of reporting within the b_hat disk around the truth.
        def disk_mass(mech, lookup):
            total = 0.0
            for (col, row), idx in lookup.items():
                if (col - 3) ** 2 + (row - 3) ** 2 <= 4:
                    total += mech.transition[cell, idx]
            return total

        assert disk_mass(dam, lookup_dam) >= disk_mass(huem, lookup_huem) - 1e-9
