"""Tests for repro.core.parallel — the sharded execution engine.

The headline property is *bit*-equality: a parallel run must not merely be
statistically equivalent to the serial pipeline, it must produce the identical
floating-point estimate for every worker count and shard size.  Everything here
asserts exact array equality, never approximate closeness.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dam import DiscreteDAM
from repro.core.domain import GridSpec, SpatialDomain
from repro.core.estimator import ShardAggregate, StreamingAggregator
from repro.core.parallel import ParallelPipeline, run_sharded
from repro.core.pipeline import DAMPipeline
from repro.utils.rng import (
    generator_from_state,
    generator_state,
    spawn_seed_sequences,
    supports_stream_splitting,
)


@pytest.fixture(scope="module")
def domain() -> SpatialDomain:
    return SpatialDomain.unit("parallel")


@pytest.fixture(scope="module")
def points() -> np.ndarray:
    rng = np.random.default_rng(99)
    cluster = rng.normal([0.4, 0.55], 0.1, size=(6000, 2))
    background = rng.random((3000, 2))
    return np.clip(np.vstack([cluster, background]), 0.0, 1.0)


def _identical(a, b) -> bool:
    return (
        np.array_equal(a.estimate.probabilities, b.estimate.probabilities)
        and np.array_equal(a.noisy_counts, b.noisy_counts)
        and np.array_equal(a.true_distribution.probabilities, b.true_distribution.probabilities)
        and a.n_users == b.n_users
    )


class TestRngHelpers:
    def test_spawn_seed_sequences_match_spawn_rngs(self):
        from repro.utils.rng import spawn_rngs

        rngs = spawn_rngs(5, 3)
        children = spawn_seed_sequences(5, 3)
        for rng, child in zip(rngs, children):
            assert rng.random(4).tolist() == np.random.default_rng(child).random(4).tolist()

    def test_spawn_seed_sequences_rejects_non_positive(self):
        with pytest.raises(ValueError):
            spawn_seed_sequences(0, 0)

    def test_generator_state_roundtrip_with_advance(self):
        serial = np.random.default_rng(13)
        expected = serial.random(10)
        state = generator_state(np.random.default_rng(13))
        head = generator_from_state(state).random(6)
        tail = generator_from_state(state, advance_by=6).random(4)
        assert np.array_equal(expected, np.concatenate([head, tail]))

    def test_supports_stream_splitting(self):
        assert supports_stream_splitting(np.random.default_rng(0))
        mt = np.random.Generator(np.random.MT19937(0))
        assert not supports_stream_splitting(mt)

    def test_advance_on_mt19937_rejected(self):
        state = generator_state(np.random.Generator(np.random.MT19937(0)))
        with pytest.raises(ValueError, match="advance"):
            generator_from_state(state, advance_by=3)


class TestMerge:
    def _aggregators(self, domain):
        grid = GridSpec(domain, 4)
        mechanism = DiscreteDAM(grid, 2.0)
        return (
            mechanism,
            mechanism.streaming_aggregator(seed=1),
            mechanism.streaming_aggregator(seed=2),
        )

    def test_merge_equals_sequential_ingestion(self, domain, points):
        grid = GridSpec(domain, 4)
        mechanism = DiscreteDAM(grid, 2.0)
        shard_a, shard_b = points[:4000], points[4000:]

        sequential = mechanism.streaming_aggregator(seed=0)
        sequential.add_points(shard_a)
        state_after_a = generator_state(sequential._rng)
        sequential.add_points(shard_b)

        left = mechanism.streaming_aggregator(seed=0)
        left.add_points(shard_a)
        right = mechanism.streaming_aggregator(seed=generator_from_state(state_after_a))
        right.add_points(shard_b)
        left.merge(right)

        assert np.array_equal(left.noisy_counts, sequential.noisy_counts)
        assert np.array_equal(left.true_cell_counts, sequential.true_cell_counts)
        assert left.n_users == sequential.n_users

    def test_merge_accepts_shard_aggregate(self, domain, points):
        mechanism, a, b = self._aggregators(domain)
        a.add_points(points[:100])
        b.add_points(points[100:300])
        snapshot = b.state()
        assert isinstance(snapshot, ShardAggregate)
        a.merge(snapshot)
        assert a.n_users == 300

    def test_state_is_a_snapshot(self, domain, points):
        _, a, _ = self._aggregators(domain)
        a.add_points(points[:100])
        snapshot = a.state()
        a.add_points(points[100:200])
        assert snapshot.n_users == 100
        assert a.n_users == 200

    def test_merge_rejects_mismatched_output_domain(self, domain, points):
        grid = GridSpec(domain, 4)
        a = DiscreteDAM(grid, 2.0, b_hat=1).streaming_aggregator()
        b = DiscreteDAM(grid, 2.0, b_hat=2).streaming_aggregator()
        b.add_points(points[:10])
        with pytest.raises(ValueError, match="output domains"):
            a.merge(b)

    def test_merge_rejects_mismatched_grid(self, domain, points):
        a = DiscreteDAM(GridSpec(domain, 4), 2.0, b_hat=1).streaming_aggregator()
        b = DiscreteDAM(GridSpec(domain, 5), 2.0, b_hat=1).streaming_aggregator()
        with pytest.raises(ValueError):
            a.merge(b)

    def test_merge_rejects_wrong_type(self, domain):
        _, a, _ = self._aggregators(domain)
        with pytest.raises(TypeError):
            a.merge({"noisy_counts": [1.0]})


class TestStreamModeBitEquality:
    def test_matches_batch_run(self, domain, points):
        serial = DAMPipeline(domain, 8, 2.0).run(points, seed=7)
        parallel = ParallelPipeline(domain, 8, 2.0, workers=2, shard_size=2500).run(points, seed=7)
        assert _identical(serial, parallel)
        assert parallel.info["parallel"] is True
        assert parallel.info["n_shards"] == 4

    def test_matches_run_stream(self, domain, points):
        chunks = np.array_split(points, 5)
        serial = DAMPipeline(domain, 8, 2.0).run_stream(chunks, seed=11)
        parallel = ParallelPipeline(domain, 8, 2.0, workers=2).run_stream(chunks, seed=11)
        assert _identical(serial, parallel)

    def test_invariant_to_shard_size(self, domain, points):
        fine = ParallelPipeline(domain, 6, 2.0, workers=1, shard_size=137).run(points, seed=3)
        coarse = ParallelPipeline(domain, 6, 2.0, workers=1, shard_size=5000).run(points, seed=3)
        assert _identical(fine, coarse)

    @pytest.mark.parametrize("mechanism", ["dam", "dam-ns", "huem"])
    @pytest.mark.parametrize("backend", ["operator", "dense"])
    def test_all_mechanisms_and_backends(self, domain, points, mechanism, backend):
        serial = DAMPipeline(domain, 6, 2.0, mechanism=mechanism, backend=backend).run(
            points[:3000], seed=5
        )
        parallel = ParallelPipeline(
            domain,
            6,
            2.0,
            mechanism=mechanism,
            backend=backend,
            workers=1,
            shard_size=800,
        ).run(points[:3000], seed=5)
        assert _identical(serial, parallel)

    def test_leaves_caller_generator_in_serial_state(self, domain, points):
        serial_rng = np.random.default_rng(21)
        parallel_rng = np.random.default_rng(21)
        DAMPipeline(domain, 6, 2.0).run(points, seed=serial_rng)
        ParallelPipeline(domain, 6, 2.0, workers=1, shard_size=1000).run(points, seed=parallel_rng)
        assert np.array_equal(serial_rng.random(8), parallel_rng.random(8))

    def test_drops_points_outside_domain_like_serial(self, domain, points):
        shifted = points.copy()
        shifted[::10] += 5.0  # push every tenth point outside the unit square
        serial = DAMPipeline(domain, 6, 2.0).run(shifted, seed=2)
        parallel = ParallelPipeline(domain, 6, 2.0, workers=1, shard_size=999).run(shifted, seed=2)
        assert _identical(serial, parallel)
        assert parallel.info["dropped_points"] == serial.info["dropped_points"]

    def test_mt19937_seed_rejected(self, domain, points):
        pipeline = ParallelPipeline(domain, 6, 2.0, workers=1)
        mt = np.random.Generator(np.random.MT19937(0))
        with pytest.raises(ValueError, match="advance"):
            pipeline.run(points, seed=mt)

    @given(
        n_points=st.integers(min_value=1, max_value=400),
        shard_size=st.integers(min_value=1, max_value=150),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=12, deadline=None)
    def test_property_bit_equal_to_serial(self, n_points, shard_size, seed):
        domain = SpatialDomain.unit()
        pts = np.random.default_rng(seed).random((n_points, 2))
        serial = DAMPipeline(domain, 5, 2.0).run(pts, seed=seed)
        parallel = ParallelPipeline(
            domain,
            5,
            2.0,
            workers=1,
            shard_size=shard_size,
        ).run(pts, seed=seed)
        assert _identical(serial, parallel)


class TestSpawnMode:
    def test_invariant_to_worker_count(self, domain, points):
        one = ParallelPipeline(
            domain,
            8,
            2.0,
            workers=1,
            shard_size=2000,
            rng_mode="spawn",
        ).run(points, seed=9)
        three = ParallelPipeline(
            domain,
            8,
            2.0,
            workers=3,
            shard_size=2000,
            rng_mode="spawn",
        ).run(points, seed=9)
        assert _identical(one, three)

    def test_deterministic_in_seed(self, domain, points):
        def run_once():
            return ParallelPipeline(
                domain,
                8,
                2.0,
                workers=1,
                shard_size=2000,
                rng_mode="spawn",
            ).run(points, seed=9)

        assert _identical(run_once(), run_once())

    def test_works_with_mt19937(self, domain, points):
        pipeline = ParallelPipeline(domain, 6, 2.0, workers=1, shard_size=2000, rng_mode="spawn")
        mt = np.random.Generator(np.random.MT19937(4))
        result = pipeline.run(points, seed=mt)
        assert result.n_users == points.shape[0]


class TestValidation:
    def test_bad_workers(self, domain):
        with pytest.raises(ValueError):
            ParallelPipeline(domain, 5, 2.0, workers=0)

    def test_bad_shard_size(self, domain):
        with pytest.raises(ValueError):
            ParallelPipeline(domain, 5, 2.0, shard_size=0)

    def test_bad_rng_mode(self, domain):
        with pytest.raises(ValueError):
            ParallelPipeline(domain, 5, 2.0, rng_mode="shared")

    def test_bad_point_shape(self, domain):
        with pytest.raises(ValueError):
            ParallelPipeline(domain, 5, 2.0, workers=1).run(np.zeros((10, 3)), seed=0)

    def test_no_points_inside(self, domain):
        with pytest.raises(ValueError, match="no points inside"):
            ParallelPipeline(domain, 5, 2.0, workers=1).run(np.full((10, 2), 7.0), seed=0)

    def test_default_workers_positive(self, domain):
        assert ParallelPipeline(domain, 5, 2.0).workers >= 1


class TestMultiprocessEquality:
    """One real multi-process run per mode (the rest use the inline path for speed)."""

    def test_pool_matches_inline_stream(self, domain, points):
        inline = ParallelPipeline(domain, 6, 2.0, workers=1, shard_size=1500).run(points, seed=17)
        pooled = ParallelPipeline(domain, 6, 2.0, workers=4, shard_size=1500).run(points, seed=17)
        assert _identical(inline, pooled)

    def test_pool_matches_inline_spawn(self, domain, points):
        inline = ParallelPipeline(
            domain,
            6,
            2.0,
            workers=1,
            shard_size=1500,
            rng_mode="spawn",
        ).run(points, seed=17)
        pooled = ParallelPipeline(
            domain,
            6,
            2.0,
            workers=4,
            shard_size=1500,
            rng_mode="spawn",
        ).run(points, seed=17)
        assert _identical(inline, pooled)


# Module-level so the spec pickles into pool workers (run_sharded's protocol).
class _SquaringContext:
    def run_shard(self, task):
        return task * task


class _SquaringSpec:
    def build(self):
        return _SquaringContext()


class TestRunSharded:
    """The generic spec/context fan-out protocol shared with the trajectory engine."""

    def test_inline_and_pooled_agree(self):
        tasks = list(range(7))
        inline = run_sharded(_SquaringSpec(), tasks, workers=1)
        pooled = run_sharded(_SquaringSpec(), tasks, workers=3)
        assert inline == pooled == [t * t for t in tasks]

    def test_inline_context_reused(self):
        class Counting(_SquaringContext):
            built = 0

        class CountingSpec:
            def build(self):
                Counting.built += 1
                return Counting()

        context = Counting()
        assert run_sharded(CountingSpec(), [2, 3], workers=1, inline_context=context) == [4, 9]
        assert Counting.built == 0  # never rebuilt on the inline path

    def test_empty_tasks(self):
        assert run_sharded(_SquaringSpec(), [], workers=4) == []
