"""Differential + property tests for the vectorized trajectory engine.

Three layers lock the engine to the retained seed loops:

* **Differential fit** — estimates computed from merged shard aggregates are
  bit-identical to the oracle estimators over the raw concatenated reports (the
  aggregate is the estimators' sufficient statistic), and the sharded fit is
  invariant to the worker count.
* **Differential synthesis** — the batched Markov walk's point density matches the
  reference per-step loop's to W2 tolerance for every grid/epsilon/domain drawn from
  the shared strategies (including planet-scale offsets and single-point inputs).
* **Mechanism audit** — each of the three per-user report streams (length GRR,
  start-cell OUE, direction GRR) empirically satisfies its e^(eps/3) claim,
  extending the every-exported-mechanism audit to the trajectory module.
"""

from __future__ import annotations

from types import SimpleNamespace

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings

import strategies
from repro.core.domain import GridSpec, SpatialDomain
from repro.core.postprocess import sanitize_probability_vector
from repro.metrics.privacy_audit import audit_mechanism, audit_pairwise_privacy
from repro.metrics.wasserstein import wasserstein2_auto
from repro.trajectory.adapter import trajectory_point_distribution
from repro.trajectory.engine import (
    TrajectoryEngine,
    TrajectoryShardAggregate,
    merge_trajectory_aggregates,
)
from repro.trajectory.ldptrace import DIRECTIONS, LDPTrace, LDPTraceModel
from repro.trajectory.pivottrace import PivotTrace

PROPERTY_SETTINGS = settings(
    max_examples=8, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


def _engine(draw_grid_side: int, epsilon: float, domain: SpatialDomain) -> TrajectoryEngine:
    return TrajectoryEngine.build(GridSpec(domain, draw_grid_side), epsilon, max_length=16)


class TestDifferentialFit:
    """Aggregated-count estimation must equal raw-report estimation bit for bit."""

    @given(
        strategies.grid_sides(2, 6),
        strategies.epsilons(),
        strategies.trajectory_sets(),
        strategies.seeds(),
    )
    @PROPERTY_SETTINGS
    def test_aggregate_estimates_match_raw_reports_bitwise(
        self, d, epsilon, trajectories, seed
    ):
        domain = SpatialDomain.from_points(np.vstack(trajectories), relative_pad=0.05)
        engine = _engine(d, epsilon, domain)
        reports = engine.collect_reports(trajectories, seed=seed)
        model = engine.estimate(engine.aggregate_reports(reports))
        mech = engine.mechanism
        np.testing.assert_array_equal(
            model.length_distribution,
            mech.length_oracle.estimate_frequencies(reports.length_reports, reports.n_users),
        )
        np.testing.assert_array_equal(
            model.start_distribution,
            mech.start_oracle.estimate_frequencies(reports.start_reports, reports.n_users),
        )
        np.testing.assert_array_equal(
            model.direction_distribution,
            mech.direction_oracle.estimate_frequencies(reports.direction_reports, reports.n_users),
        )

    @given(
        strategies.grid_sides(2, 6),
        strategies.epsilons(),
        strategies.trajectory_sets(min_trajectories=4, max_trajectories=12),
        strategies.seeds(),
    )
    @PROPERTY_SETTINGS
    def test_sharded_fit_invariant_to_workers_and_merge_order(
        self, d, epsilon, trajectories, seed
    ):
        domain = SpatialDomain.from_points(np.vstack(trajectories), relative_pad=0.05)
        engine = _engine(d, epsilon, domain)
        serial = engine.fit(trajectories, seed=seed, shard_size=2)
        pooled = engine.fit(trajectories, seed=seed, shard_size=2, workers=2)
        np.testing.assert_array_equal(serial.length_distribution, pooled.length_distribution)
        np.testing.assert_array_equal(serial.start_distribution, pooled.start_distribution)
        np.testing.assert_array_equal(serial.direction_distribution, pooled.direction_distribution)

    def test_merge_is_commutative_and_associative(self):
        rng = np.random.default_rng(0)
        shards = [
            TrajectoryShardAggregate(
                length_counts=rng.integers(0, 10, 5),
                start_counts=rng.integers(0, 10, 9),
                direction_counts=rng.integers(0, 10, 9),
                n_users=int(rng.integers(1, 20)),
            )
            for _ in range(4)
        ]
        forward = merge_trajectory_aggregates(shards)
        backward = merge_trajectory_aggregates(shards[::-1])
        np.testing.assert_array_equal(forward.length_counts, backward.length_counts)
        np.testing.assert_array_equal(forward.start_counts, backward.start_counts)
        np.testing.assert_array_equal(forward.direction_counts, backward.direction_counts)
        assert forward.n_users == backward.n_users

    def test_merge_rejects_mismatched_domains(self):
        a = TrajectoryShardAggregate(np.zeros(5), np.zeros(9), np.zeros(9), 1)
        b = TrajectoryShardAggregate(np.zeros(6), np.zeros(9), np.zeros(9), 1)
        with pytest.raises(ValueError, match="different report domains"):
            a.merged(b)

    def test_merge_empty_rejected(self):
        with pytest.raises(ValueError):
            merge_trajectory_aggregates([])

    def test_fit_matches_reference_interface(self):
        """Engine fit and the retained reference produce the same model *shape*."""
        trajectories = [np.random.default_rng(i).random((6, 2)) for i in range(5)]
        engine = _engine(4, 2.0, SpatialDomain.unit())
        fast = engine.fit(trajectories, seed=0)
        slow = engine.fit_reference(trajectories, seed=0)
        for model in (fast, slow):
            assert model.length_distribution.sum() == pytest.approx(1.0)
            assert model.start_distribution.sum() == pytest.approx(1.0)
            assert model.direction_distribution.sum() == pytest.approx(1.0)
        np.testing.assert_array_equal(fast.length_buckets, slow.length_buckets)

    def test_empty_and_degenerate_inputs_rejected(self):
        engine = _engine(3, 1.0, SpatialDomain.unit())
        with pytest.raises(ValueError):
            engine.fit([])
        with pytest.raises(ValueError):
            engine.fit([np.empty((0, 2))])
        with pytest.raises(ValueError):
            engine.fit([np.zeros((3, 2))], workers=0)
        with pytest.raises(ValueError):
            engine.fit([np.zeros((3, 2))], shard_size=0)


class TestDifferentialSynthesis:
    """The batched walk must match the reference loop's point density."""

    #: Two independent 1200-trajectory draws from one model measure well under this
    #: (worst observed ~0.06 of the domain diagonal across the strategy space).
    W2_TOLERANCE = 0.15

    @given(
        strategies.grid_sides(2, 6),
        strategies.epsilons(),
        strategies.trajectory_sets(),
        strategies.seeds(),
    )
    @PROPERTY_SETTINGS
    def test_batched_walk_matches_reference_w2(self, d, epsilon, trajectories, seed):
        domain = SpatialDomain.from_points(np.vstack(trajectories), relative_pad=0.05)
        engine = _engine(d, epsilon, domain)
        model = engine.fit(trajectories, seed=seed)
        grid = engine.grid
        batched = trajectory_point_distribution(engine.synthesize(model, 1200, seed=seed + 1), grid)
        reference = trajectory_point_distribution(
            engine.synthesize_reference(model, 1200, seed=seed + 2), grid
        )
        # A second independent reference draw calibrates the sampling/solver noise
        # floor: on degenerate (near-zero-extent) domains the Wasserstein solver's
        # numerical floor dominates the diagonal-relative tolerance, and two draws
        # of the *same* loop measure as far apart as batched-vs-reference does.
        reference_again = trajectory_point_distribution(
            engine.synthesize_reference(model, 1200, seed=seed + 3), grid
        )
        w2 = wasserstein2_auto(reference, batched)
        noise_floor = wasserstein2_auto(reference, reference_again)
        diagonal = float(np.hypot(domain.width, domain.height))
        assert w2 <= max(self.W2_TOLERANCE * diagonal, 2.0 * noise_floor)

    @given(
        strategies.grid_sides(2, 6),
        strategies.epsilons(),
        strategies.trajectory_sets(),
        strategies.seeds(),
    )
    @PROPERTY_SETTINGS
    def test_batched_walk_structural_invariants(self, d, epsilon, trajectories, seed):
        domain = SpatialDomain.from_points(np.vstack(trajectories), relative_pad=0.05)
        engine = _engine(d, epsilon, domain)
        synthetic = engine.fit_synthesize(trajectories, seed=seed, n_output=64)
        assert len(synthetic) == 64
        assert min(t.shape[0] for t in synthetic) >= 2
        assert engine.grid.domain.contains(np.vstack(synthetic)).all()

    def test_deterministic_given_seed(self):
        engine = _engine(4, 2.0, SpatialDomain.unit())
        trajectories = [np.random.default_rng(i).random((8, 2)) for i in range(6)]
        a = engine.fit_synthesize(trajectories, seed=3, n_output=10)
        b = engine.fit_synthesize(trajectories, seed=3, n_output=10)
        for t_a, t_b in zip(a, b):
            np.testing.assert_array_equal(t_a, t_b)

    def test_zero_and_negative_counts(self):
        engine = _engine(3, 1.0, SpatialDomain.unit())
        model = engine.fit([np.zeros((2, 2)) + 0.5], seed=0)
        assert engine.synthesize(model, 0, seed=0) == []
        with pytest.raises(ValueError):
            engine.synthesize(model, -1, seed=0)

    def test_incompatible_model_rejected(self):
        engine = _engine(3, 1.0, SpatialDomain.unit())
        bad = LDPTraceModel(
            length_distribution=np.full(4, 0.25),
            start_distribution=np.full(16, 1 / 16),  # 4x4 model on a 3x3 engine
            direction_distribution=np.full(9, 1 / 9),
            length_buckets=np.linspace(2, 20, 5),
        )
        with pytest.raises(ValueError, match="cells"):
            engine.synthesize(bad, 5, seed=0)


class TestSimplexSanitation:
    """Regression: raw (unprojected) estimates must not crash or skew sampling."""

    def test_raw_estimates_provably_negative_small_n_large_d(self):
        """With few users on a large domain, the unbiased GRR inversion *must* go
        negative for unreported categories — the exact input that used to crash
        ``rng.choice(p=...)`` when a model carried raw estimates."""
        oracle = LDPTrace(GridSpec.unit(8), 0.9).length_oracle
        n = 12
        reports = np.zeros(n, dtype=np.int64)  # every user lands in bucket 0
        counts = np.bincount(reports, minlength=oracle.domain_size)
        raw = (counts / n - oracle.q) / (oracle.p - oracle.q)
        assert raw.min() < 0  # provably negative: (0 - q) / (p - q) < 0

    def test_synthesize_with_raw_negative_estimates(self):
        grid = GridSpec.unit(8)
        engine = TrajectoryEngine.build(grid, 0.9, max_length=20)
        oracle = engine.mechanism.length_oracle
        n = 12
        counts = np.bincount(np.zeros(n, dtype=np.int64), minlength=oracle.domain_size)
        raw_lengths = (counts / n - oracle.q) / (oracle.p - oracle.q)
        raw_starts = np.full(grid.n_cells, -1.0 / grid.n_cells)
        raw_starts[0] = 2.0
        model = LDPTraceModel(
            length_distribution=raw_lengths,
            start_distribution=raw_starts,
            direction_distribution=np.array([0.5, -0.1, 0.6, 0, 0, 0, 0, 0, 0]),
            length_buckets=engine.mechanism.length_buckets,
        )
        for synthesize in (engine.synthesize, engine.synthesize_reference):
            synthetic = synthesize(model, 32, seed=0)
            assert len(synthetic) == 32
            assert min(t.shape[0] for t in synthetic) >= 2
            assert grid.domain.contains(np.vstack(synthetic)).all()

    def test_all_zero_estimates_fall_back_to_uniform(self):
        grid = GridSpec.unit(4)
        engine = TrajectoryEngine.build(grid, 1.0, max_length=12)
        model = LDPTraceModel(
            length_distribution=np.zeros(engine.mechanism.n_length_buckets),
            start_distribution=np.zeros(grid.n_cells),
            direction_distribution=np.zeros(len(DIRECTIONS)),
            length_buckets=engine.mechanism.length_buckets,
        )
        synthetic = engine.synthesize(model, 200, seed=1)
        # Uniform fallback: every start row/column must appear among 200 draws.
        start_cells = np.array([grid.point_to_cell(t[:1])[0] for t in synthetic])
        assert np.unique(start_cells).shape[0] > grid.n_cells // 2

    def test_sanitize_probability_vector_contract(self):
        out = sanitize_probability_vector(np.array([-0.5, 0.25, 0.75]))
        np.testing.assert_allclose(out, [0.0, 0.25, 0.75])
        np.testing.assert_allclose(sanitize_probability_vector(np.zeros(4)), np.full(4, 0.25))
        np.testing.assert_allclose(
            sanitize_probability_vector(np.array([np.nan, np.inf, 1.0])), [0, 0, 1.0]
        )
        with pytest.raises(ValueError):
            sanitize_probability_vector(np.empty(0))

    def test_pivottrace_kernel_rows_are_distributions(self):
        mechanism = PivotTrace(GridSpec.unit(6), 4.0)
        np.testing.assert_allclose(mechanism._pivot_kernel.sum(axis=1), 1.0)
        assert (mechanism._pivot_kernel >= 0).all()


class _GRROracleAuditAdapter:
    """Expose a categorical GRR oracle through the SpatialMechanism audit surface."""

    def __init__(self, oracle) -> None:
        self.oracle = oracle
        self.epsilon = oracle.epsilon
        self.grid = SimpleNamespace(n_cells=oracle.domain_size)

    def output_domain_size(self) -> int:
        return self.oracle.domain_size

    def privatize_cells(self, cells: np.ndarray, seed=None) -> np.ndarray:
        return self.oracle.privatize(cells, seed=seed)


class _OUEPairProjectionAdapter:
    """Project OUE bit-vector reports onto the two challenged positions.

    The audit needs categorical outputs; the full 2^k OUE output space is
    unenumerable.  Projecting each report to the bit pair ``(report[a], report[b])``
    is post-processing (so it can only *lower* the realised privacy loss) and it is
    exactly the pair of positions where OUE's worst-case ratio e^eps is attained,
    so a leaky implementation still trips the audit.
    """

    def __init__(self, oracle, cell_a: int, cell_b: int) -> None:
        self.oracle = oracle
        self.epsilon = oracle.epsilon
        self.cell_a = cell_a
        self.cell_b = cell_b

    def output_domain_size(self) -> int:
        return 4

    def privatize_cells(self, cells: np.ndarray, seed=None) -> np.ndarray:
        bits = self.oracle.privatize(cells, seed=seed)
        return bits[:, self.cell_a].astype(np.int64) * 2 + bits[:, self.cell_b].astype(
            np.int64
        )


class TestTrajectoryOracleAudits:
    """Each per-user report stream must satisfy its e^(eps/3) claim empirically."""

    AUDIT_SETTINGS = settings(
        max_examples=5, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )

    @given(strategies.grid_sides(2, 4), strategies.epsilons(), strategies.seeds())
    @AUDIT_SETTINGS
    def test_grr_report_streams_within_budget_share(self, d, epsilon, seed):
        mechanism = LDPTrace(GridSpec.unit(d), epsilon)
        for oracle in (mechanism.length_oracle, mechanism.direction_oracle):
            adapter = _GRROracleAuditAdapter(oracle)
            # confidence_z=4 absorbs the max-over-outputs/pairs/examples
            # multiplicity (see the matching audit in tests/test_properties.py).
            n_trials = max(5_000, 300 * oracle.domain_size)
            results = audit_mechanism(
                adapter, n_pairs=2, n_trials=n_trials, confidence_z=4.0, seed=seed
            )
            assert not any(result.violated for result in results), (
                f"{type(oracle).__name__} exceeded its eps/3 = {oracle.epsilon:.3f} "
                f"claim: {max(r.epsilon_lower_confidence for r in results):.3f}"
            )

    @given(strategies.grid_sides(2, 4), strategies.epsilons(), strategies.seeds())
    @AUDIT_SETTINGS
    def test_oue_start_report_stream_within_budget_share(self, d, epsilon, seed):
        mechanism = LDPTrace(GridSpec.unit(d), epsilon)
        oracle = mechanism.start_oracle
        rng = np.random.default_rng(seed)
        pairs = [(0, oracle.domain_size - 1)]
        a, b = rng.choice(oracle.domain_size, size=2, replace=False)
        pairs.append((int(a), int(b)))
        for cell_a, cell_b in pairs:
            adapter = _OUEPairProjectionAdapter(oracle, cell_a, cell_b)
            result = audit_pairwise_privacy(
                adapter, cell_a, cell_b, n_trials=5_000, confidence_z=4.0, seed=rng
            )
            assert not result.violated, (
                f"OUE start oracle exceeded its eps/3 = {oracle.epsilon:.3f} claim "
                f"on pair ({cell_a}, {cell_b}): {result.epsilon_lower_confidence:.3f}"
            )
