"""Tests for repro.trajectory.ldptrace."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings

import strategies
from repro.core.domain import GridSpec, SpatialDomain
from repro.datasets.trajectories import generate_trajectories
from repro.trajectory.ldptrace import DIRECTIONS, LDPTrace


@pytest.fixture(scope="module")
def trajectories():
    rng = np.random.default_rng(0)
    points = np.clip(rng.normal([0.4, 0.4], 0.1, size=(4000, 2)), 0, 1)
    dataset = generate_trajectories(
        points,
        SpatialDomain.unit(),
        routing_d=30,
        n_trajectories=80,
        max_length=25,
        seed=1,
    )
    return dataset.trajectories


@pytest.fixture(scope="module")
def grid() -> GridSpec:
    return GridSpec.unit(8)


class TestFitting:
    def test_model_components_are_distributions(self, trajectories, grid):
        mechanism = LDPTrace(grid, epsilon=2.0)
        model = mechanism.fit(trajectories, seed=0)
        assert model.length_distribution.sum() == pytest.approx(1.0)
        assert model.start_distribution.sum() == pytest.approx(1.0)
        assert model.direction_distribution.sum() == pytest.approx(1.0)

    def test_budget_split_across_three_reports(self, grid):
        mechanism = LDPTrace(grid, epsilon=3.0)
        assert mechanism.length_oracle.epsilon == pytest.approx(1.0)
        assert mechanism.start_oracle.epsilon == pytest.approx(1.0)
        assert mechanism.direction_oracle.epsilon == pytest.approx(1.0)

    def test_empty_input_rejected(self, grid):
        with pytest.raises(ValueError):
            LDPTrace(grid, 1.0).fit([])

    def test_direction_domain_size(self, grid):
        assert LDPTrace(grid, 1.0).direction_oracle.domain_size == len(DIRECTIONS)

    def test_invalid_parameters_rejected(self, grid):
        with pytest.raises(ValueError):
            LDPTrace(grid, 1.0, n_length_buckets=0)
        with pytest.raises(ValueError):
            LDPTrace(grid, 1.0, max_length=1)


class TestSynthesis:
    def test_output_count(self, trajectories, grid):
        mechanism = LDPTrace(grid, epsilon=2.0)
        synthetic = mechanism.fit_synthesize(trajectories, seed=0)
        assert len(synthetic) == len(trajectories)

    def test_custom_output_count(self, trajectories, grid):
        mechanism = LDPTrace(grid, epsilon=2.0)
        synthetic = mechanism.fit_synthesize(trajectories, seed=0, n_output=10)
        assert len(synthetic) == 10

    def test_synthetic_points_inside_domain(self, trajectories, grid):
        mechanism = LDPTrace(grid, epsilon=2.0)
        synthetic = mechanism.fit_synthesize(trajectories, seed=1)
        points = np.vstack(synthetic)
        assert grid.domain.contains(points).all()

    def test_synthetic_lengths_at_least_two(self, trajectories, grid):
        mechanism = LDPTrace(grid, epsilon=2.0)
        synthetic = mechanism.fit_synthesize(trajectories, seed=2)
        assert min(t.shape[0] for t in synthetic) >= 2

    def test_zero_output(self, trajectories, grid):
        mechanism = LDPTrace(grid, epsilon=2.0)
        model = mechanism.fit(trajectories, seed=0)
        assert mechanism.synthesize(model, 0, seed=0) == []

    def test_deterministic_given_seed(self, trajectories, grid):
        mechanism = LDPTrace(grid, epsilon=2.0)
        a = mechanism.fit_synthesize(trajectories, seed=9, n_output=5)
        b = mechanism.fit_synthesize(trajectories, seed=9, n_output=5)
        for t_a, t_b in zip(a, b):
            np.testing.assert_array_equal(t_a, t_b)


class TestProperties:
    """Shared-strategy properties: arbitrary domains, single-point inputs, overhang."""

    SETTINGS = settings(max_examples=8, deadline=None, suppress_health_check=[HealthCheck.too_slow])

    @given(
        strategies.trajectory_sets(),
        strategies.grid_sides(2, 6),
        strategies.epsilons(),
        strategies.seeds(),
    )
    @SETTINGS
    def test_fit_synthesize_on_arbitrary_domains(self, trajectories, d, epsilon, seed):
        domain = SpatialDomain.from_points(np.vstack(trajectories), relative_pad=0.05)
        mechanism = LDPTrace(GridSpec(domain, d), epsilon, max_length=16)
        synthetic = mechanism.fit_synthesize(trajectories, seed=seed, n_output=16)
        assert len(synthetic) == 16
        assert min(t.shape[0] for t in synthetic) >= 2
        assert domain.contains(np.vstack(synthetic)).all()

    @given(strategies.trajectory_sets(max_length=10), strategies.seeds())
    @SETTINGS
    def test_reference_loops_accept_the_same_inputs(self, trajectories, seed):
        """The retained reference paths handle every strategy-drawn input too
        (single-point trajectories, off-grid points, planet-scale offsets)."""
        domain = SpatialDomain.from_points(np.vstack(trajectories), relative_pad=0.05)
        mechanism = LDPTrace(GridSpec(domain, 4), 1.4, max_length=16)
        model = mechanism.fit_reference(trajectories, seed=seed)
        synthetic = mechanism.synthesize_reference(model, 8, seed=seed)
        assert len(synthetic) == 8
        assert min(t.shape[0] for t in synthetic) >= 2
        assert domain.contains(np.vstack(synthetic)).all()
