"""Tests for repro.trajectory.pivottrace."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings

import strategies
from repro.core.domain import GridSpec, SpatialDomain
from repro.datasets.trajectories import generate_trajectories
from repro.trajectory.pivottrace import PivotTrace


@pytest.fixture(scope="module")
def trajectories():
    rng = np.random.default_rng(3)
    points = np.clip(rng.normal([0.6, 0.5], 0.12, size=(4000, 2)), 0, 1)
    dataset = generate_trajectories(
        points,
        SpatialDomain.unit(),
        routing_d=30,
        n_trajectories=50,
        max_length=30,
        seed=4,
    )
    return dataset.trajectories


@pytest.fixture(scope="module")
def grid() -> GridSpec:
    return GridSpec.unit(8)


class TestPivotTrace:
    def test_reconstruction_count(self, trajectories, grid):
        mechanism = PivotTrace(grid, epsilon=2.0)
        reconstructed = mechanism.collect(trajectories, seed=0)
        assert len(reconstructed) == len(trajectories)

    def test_reconstructed_points_inside_domain(self, trajectories, grid):
        mechanism = PivotTrace(grid, epsilon=2.0)
        reconstructed = mechanism.collect(trajectories, seed=1)
        points = np.vstack(reconstructed)
        assert grid.domain.contains(points).all()

    def test_reconstructed_lengths_at_least_two(self, trajectories, grid):
        mechanism = PivotTrace(grid, epsilon=1.5)
        reconstructed = mechanism.collect(trajectories, seed=2)
        assert min(t.shape[0] for t in reconstructed) >= 2

    def test_budget_split(self, grid):
        mechanism = PivotTrace(grid, epsilon=2.0, n_pivots=3)
        assert mechanism.share == pytest.approx(0.5)

    def test_pivot_indices_include_endpoints(self, grid):
        mechanism = PivotTrace(grid, epsilon=1.0, n_pivots=3)
        indices = mechanism._pivot_indices(10)
        assert indices[0] == 0 and indices[-1] == 9

    def test_short_trajectory_handled(self, grid):
        mechanism = PivotTrace(grid, epsilon=1.0, n_pivots=4)
        short = [np.array([[0.1, 0.1], [0.2, 0.2]])]
        reconstructed = mechanism.collect(short, seed=0)
        assert len(reconstructed) == 1

    def test_empty_input_rejected(self, grid):
        with pytest.raises(ValueError):
            PivotTrace(grid, 1.0).collect([])

    def test_invalid_pivot_count_rejected(self, grid):
        with pytest.raises(ValueError):
            PivotTrace(grid, 1.0, n_pivots=1)

    def test_pivot_perturbation_prefers_nearby_cells(self, grid):
        mechanism = PivotTrace(grid, epsilon=3.0)
        rng = np.random.default_rng(5)
        cell = grid.rowcol_to_cell(4, 4)
        noisy = mechanism._perturb_cells(np.full(5000, cell), rng)
        rows, cols = grid.cell_to_rowcol(noisy)
        distances = np.hypot(rows - 4, cols - 4)
        # The distance-aware kernel must beat a uniform perturbation on average.
        all_rows, all_cols = grid.cell_to_rowcol(np.arange(grid.n_cells))
        uniform_mean = np.hypot(all_rows - 4, all_cols - 4).mean()
        assert distances.mean() < uniform_mean * 0.9

    def test_batched_perturbation_matches_reference_statistically(self, grid):
        """The grouped inverse-CDF sampler and the seed per-pivot ``rng.choice``
        loop draw from the same kernel rows (total variation stays small)."""
        mechanism = PivotTrace(grid, epsilon=2.0)
        cell = int(grid.rowcol_to_cell(3, 5))
        cells = np.full(20_000, cell)
        batched = mechanism._perturb_cells(cells, np.random.default_rng(0))
        reference = mechanism._perturb_cells_reference(cells, np.random.default_rng(1))
        hist_b = np.bincount(batched, minlength=grid.n_cells) / batched.shape[0]
        hist_r = np.bincount(reference, minlength=grid.n_cells) / reference.shape[0]
        assert 0.5 * np.abs(hist_b - hist_r).sum() < 0.05


class TestProperties:
    """Shared-strategy properties: arbitrary domains, single-point inputs, overhang."""

    SETTINGS = settings(max_examples=8, deadline=None, suppress_health_check=[HealthCheck.too_slow])

    @given(
        strategies.trajectory_sets(),
        strategies.grid_sides(2, 6),
        strategies.epsilons(),
        strategies.seeds(),
    )
    @SETTINGS
    def test_collect_on_arbitrary_domains(self, trajectories, d, epsilon, seed):
        domain = SpatialDomain.from_points(np.vstack(trajectories), relative_pad=0.05)
        mechanism = PivotTrace(GridSpec(domain, d), epsilon)
        reconstructed = mechanism.collect(trajectories, seed=seed)
        assert len(reconstructed) == len(trajectories)
        assert min(t.shape[0] for t in reconstructed) >= 2
        assert domain.contains(np.vstack(reconstructed)).all()

    @given(strategies.trajectory_sets(max_length=10), strategies.seeds())
    @SETTINGS
    def test_reference_loop_accepts_the_same_inputs(self, trajectories, seed):
        domain = SpatialDomain.from_points(np.vstack(trajectories), relative_pad=0.05)
        mechanism = PivotTrace(GridSpec(domain, 4), 1.4)
        reconstructed = mechanism.collect_reference(trajectories, seed=seed)
        assert len(reconstructed) == len(trajectories)
        assert min(t.shape[0] for t in reconstructed) >= 2
        assert domain.contains(np.vstack(reconstructed)).all()
