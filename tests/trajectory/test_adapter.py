"""Tests for repro.trajectory.adapter — the Appendix-D seven-step comparison."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import strategies
from repro.core.domain import GridSpec, SpatialDomain
from repro.datasets.trajectories import generate_trajectories
from repro.trajectory.adapter import (
    compare_all_trajectory_mechanisms,
    compare_trajectory_mechanism,
    trajectory_point_distribution,
)


@pytest.fixture(scope="module")
def domain() -> SpatialDomain:
    return SpatialDomain(0.0, 2.0, 0.0, 2.0, name="traj-domain")


@pytest.fixture(scope="module")
def trajectories(domain):
    rng = np.random.default_rng(0)
    points = np.clip(rng.normal([0.6, 0.7], 0.2, size=(5000, 2)), 0.01, 1.99)
    dataset = generate_trajectories(
        points, domain, routing_d=30, n_trajectories=60, max_length=25, seed=1
    )
    return dataset.trajectories


class TestTrajectoryPointDistribution:
    def test_is_distribution(self, trajectories, domain):
        grid = GridSpec(domain, 6)
        dist = trajectory_point_distribution(trajectories, grid)
        assert dist.flat().sum() == pytest.approx(1.0)

    def test_empty_gives_uniform(self, domain):
        grid = GridSpec(domain, 4)
        dist = trajectory_point_distribution([], grid)
        np.testing.assert_allclose(dist.flat(), 1.0 / 16)


class TestCompare:
    @pytest.mark.parametrize("mechanism", ["ldptrace", "pivottrace", "dam"])
    def test_each_mechanism_runs(self, trajectories, domain, mechanism):
        result = compare_trajectory_mechanism(
            mechanism, trajectories, domain, d=6, epsilon=1.5, seed=0
        )
        assert result.w2 >= 0
        assert result.n_trajectories == len(trajectories)
        assert result.estimated_distribution.flat().sum() == pytest.approx(1.0)

    def test_normalised_domain_default(self, trajectories, domain):
        """With normalisation the W2 is on the unit-square scale (bounded by sqrt(2))."""
        result = compare_trajectory_mechanism("dam", trajectories, domain, d=6, epsilon=1.5, seed=0)
        assert result.w2 <= np.sqrt(2)

    def test_unnormalised_domain_scales_w2(self, trajectories, domain):
        normalised = compare_trajectory_mechanism(
            "dam", trajectories, domain, d=6, epsilon=1.5, seed=0
        )
        raw = compare_trajectory_mechanism(
            "dam", trajectories, domain, d=6, epsilon=1.5, seed=0, normalise_domain=False
        )
        # The domain is 2x2, so unnormalised distances are about twice as large.
        assert raw.w2 == pytest.approx(2.0 * normalised.w2, rel=0.35)

    def test_unknown_mechanism_rejected(self, trajectories, domain):
        with pytest.raises(ValueError):
            compare_trajectory_mechanism("foo", trajectories, domain, 5, 1.0)

    def test_compare_all_returns_three(self, trajectories, domain):
        results = compare_all_trajectory_mechanisms(trajectories, domain, d=5, epsilon=1.5, seed=0)
        assert set(results) == {"ldptrace", "pivottrace", "dam"}

    def test_dam_is_competitive(self, trajectories, domain):
        """Figure 14's qualitative claim: DAM's point-density error does not exceed the
        trajectory mechanisms' (it usually beats them)."""
        results = compare_all_trajectory_mechanisms(trajectories, domain, d=6, epsilon=1.5, seed=3)
        assert results["dam"].w2 <= results["ldptrace"].w2 + 0.05


class TestProperties:
    """Shared-strategy properties over the seven-step comparison."""

    SETTINGS = settings(max_examples=6, deadline=None, suppress_health_check=[HealthCheck.too_slow])

    @given(
        strategies.trajectory_sets(),
        st.sampled_from(["ldptrace", "pivottrace", "dam"]),
        strategies.grid_sides(1, 6),
        st.sampled_from([0.5, 1.5, 2.5]),
        strategies.seeds(),
    )
    @SETTINGS
    def test_comparison_runs_on_arbitrary_sets(
        self, trajectories, mechanism, d, epsilon, seed
    ):
        domain = SpatialDomain.from_points(np.vstack(trajectories), relative_pad=0.05)
        result = compare_trajectory_mechanism(
            mechanism, trajectories, domain, d, epsilon, seed=seed
        )
        assert np.isfinite(result.w2) and result.w2 >= 0
        assert result.n_trajectories == len(trajectories)
        assert result.estimated_distribution.flat().sum() == pytest.approx(1.0)
