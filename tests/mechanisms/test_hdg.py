"""Tests for repro.mechanisms.hdg — the Hybrid-Dimensional Grids extension."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.domain import GridSpec
from repro.mechanisms.hdg import HDG


@pytest.fixture
def grid6() -> GridSpec:
    return GridSpec.unit(6)


class TestConstruction:
    def test_default_coarse_grid(self, grid6):
        assert HDG(grid6, 2.0).coarse_d == 2

    def test_coarse_never_exceeds_fine(self, grid6):
        assert HDG(grid6, 2.0, coarse_d=10).coarse_d == 6

    def test_invalid_fraction_rejected(self, grid6):
        with pytest.raises(ValueError):
            HDG(grid6, 2.0, joint_fraction=0.0)


class TestEstimation:
    def test_run_produces_distribution(self, grid6, clustered_points):
        mech = HDG(grid6, 3.0)
        report = mech.run(clustered_points, seed=0)
        assert report.estimate.flat().sum() == pytest.approx(1.0)
        assert np.all(report.estimate.flat() >= 0)

    def test_estimate_before_privatize_rejected(self, grid6):
        with pytest.raises(RuntimeError):
            HDG(grid6, 2.0).estimate(np.zeros(4), 10)

    def test_coarse_consistency(self, grid6, clustered_points):
        """After reconciliation, the estimate's coarse-block masses match the coarse grid."""
        mech = HDG(grid6, 4.0, coarse_d=2)
        report = mech.run(clustered_points, seed=1)
        estimate = report.estimate.probabilities
        block = estimate[:3, :3].sum()
        # The lower-left block holds the dominant cluster (centred at 0.25, 0.3).
        assert block > 0.3

    def test_recovers_hotspot_roughly(self, grid6, rng):
        pts = np.clip(rng.normal([0.2, 0.2], 0.08, size=(20_000, 2)), 0, 1)
        mech = HDG(grid6, 5.0)
        estimate = mech.run(pts, seed=2).estimate
        # Most recovered mass must sit in the lower-left quadrant.
        assert estimate.probabilities[:3, :3].sum() > 0.6


class TestRangeQuery:
    def test_full_range_is_one(self, grid6, clustered_points):
        mech = HDG(grid6, 3.0)
        estimate = mech.run(clustered_points, seed=0).estimate
        assert mech.range_query(estimate, (0, 5), (0, 5)) == pytest.approx(1.0)

    def test_sub_range(self, grid6, clustered_points):
        mech = HDG(grid6, 3.0)
        estimate = mech.run(clustered_points, seed=0).estimate
        value = mech.range_query(estimate, (0, 2), (0, 2))
        assert 0.0 <= value <= 1.0

    def test_invalid_range_rejected(self, grid6, clustered_points):
        mech = HDG(grid6, 3.0)
        estimate = mech.run(clustered_points, seed=0).estimate
        with pytest.raises(ValueError):
            mech.range_query(estimate, (0, 6), (0, 5))
