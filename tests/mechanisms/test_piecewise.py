"""Tests for repro.mechanisms.piecewise — SR, PM and the hybrid mean estimator."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.mechanisms.piecewise import (
    PiecewiseMechanism,
    StochasticRounding,
    hybrid_mean_estimator,
)


class TestStochasticRounding:
    def test_reports_are_plus_minus_scale(self):
        sr = StochasticRounding(1.0)
        reports = sr.privatize(np.random.default_rng(0).uniform(-1, 1, 100), seed=1)
        assert set(np.round(np.abs(reports), 10)) == {round(sr.scale, 10)}

    def test_unbiased_mean(self):
        sr = StochasticRounding(2.0)
        rng = np.random.default_rng(1)
        values = rng.uniform(-1, 1, 50_000)
        estimate = sr.estimate_mean(sr.privatize(values, seed=rng))
        assert estimate == pytest.approx(values.mean(), abs=0.03)

    def test_extreme_value_probabilities(self):
        sr = StochasticRounding(1.5)
        rng = np.random.default_rng(2)
        reports = sr.privatize(np.ones(20_000), seed=rng)
        expected_p = 0.5 + (math.exp(1.5) - 1) / (2 * (math.exp(1.5) + 1))
        assert abs((reports > 0).mean() - expected_p) < 0.01

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            StochasticRounding(1.0).privatize(np.array([1.2]))

    def test_empty_mean_rejected(self):
        with pytest.raises(ValueError):
            StochasticRounding(1.0).estimate_mean(np.array([]))


class TestPiecewiseMechanism:
    def test_reports_in_output_interval(self):
        pm = PiecewiseMechanism(2.0)
        rng = np.random.default_rng(0)
        reports = pm.privatize(rng.uniform(-1, 1, 5000), seed=rng)
        assert reports.min() >= -pm.s - 1e-9
        assert reports.max() <= pm.s + 1e-9

    def test_unbiased_mean(self):
        pm = PiecewiseMechanism(2.0)
        rng = np.random.default_rng(1)
        values = rng.uniform(-0.8, 0.8, 50_000)
        estimate = pm.estimate_mean(pm.privatize(values, seed=rng))
        assert estimate == pytest.approx(values.mean(), abs=0.02)

    def test_pm_beats_sr_variance_for_moderate_budget(self):
        """PM's whole point: lower variance than SR once eps is not tiny."""
        eps = 3.0
        rng = np.random.default_rng(2)
        values = np.zeros(30_000)
        pm_reports = PiecewiseMechanism(eps).privatize(values, seed=rng)
        sr_reports = StochasticRounding(eps).privatize(values, seed=rng)
        assert pm_reports.var() < sr_reports.var()

    def test_band_is_centered_on_value(self):
        pm = PiecewiseMechanism(4.0)
        left, right = pm._band(np.array([0.0]))
        assert left[0] == pytest.approx(-right[0])

    def test_s_formula(self):
        eps = 2.0
        pm = PiecewiseMechanism(eps)
        half = math.exp(eps / 2)
        assert pm.s == pytest.approx((half + 1) / (half - 1))

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            PiecewiseMechanism(1.0).privatize(np.array([-1.5]))


class TestHybridEstimator:
    def test_small_budget_uses_sr(self):
        rng = np.random.default_rng(0)
        values = rng.uniform(-1, 1, 20_000)
        estimate = hybrid_mean_estimator(values, 0.4, seed=1)
        assert abs(estimate - values.mean()) < 0.15

    def test_large_budget_accuracy(self):
        rng = np.random.default_rng(1)
        values = rng.uniform(-1, 1, 20_000)
        estimate = hybrid_mean_estimator(values, 4.0, seed=2)
        assert abs(estimate - values.mean()) < 0.02

    def test_invalid_epsilon_rejected(self):
        with pytest.raises(ValueError):
            hybrid_mean_estimator(np.array([0.0]), -1.0)
