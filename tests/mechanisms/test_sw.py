"""Tests for repro.mechanisms.sw — the Square Wave mechanism and its discrete oracle."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.mechanisms.sw import (
    DiscreteSquareWave,
    SquareWaveMechanism,
    square_wave_probabilities,
    square_wave_radius,
)


class TestSquareWaveClosedForms:
    @pytest.mark.parametrize("eps", [0.5, 1.0, 2.0, 4.0])
    def test_radius_positive_and_below_half(self, eps):
        b = square_wave_radius(eps)
        assert 0 < b

    def test_radius_matches_li_et_al_formula(self):
        eps = 2.0
        e = math.exp(eps)
        expected = (eps * e - e + 1) / (2 * e * (e - 1 - eps))
        assert square_wave_radius(eps) == pytest.approx(expected)

    @pytest.mark.parametrize("eps", [0.5, 1.0, 2.0, 4.0])
    def test_probabilities_ratio(self, eps):
        _, p, q = square_wave_probabilities(eps)
        assert p / q == pytest.approx(math.exp(eps))

    @pytest.mark.parametrize("eps", [0.5, 1.0, 2.0, 4.0])
    def test_total_mass_one(self, eps):
        b, p, q = square_wave_probabilities(eps)
        assert 2 * b * p + 1 * q == pytest.approx(1.0)

    def test_radius_decreases_with_epsilon(self):
        values = [square_wave_radius(e) for e in (0.5, 1.0, 2.0, 5.0)]
        assert all(a > b for a, b in zip(values, values[1:]))


class TestContinuousSquareWave:
    def test_reports_in_output_interval(self):
        sw = SquareWaveMechanism(2.0)
        rng = np.random.default_rng(0)
        reports = sw.privatize(rng.random(2000), seed=rng)
        assert reports.min() >= -sw.b - 1e-9
        assert reports.max() <= 1 + sw.b + 1e-9

    def test_high_band_mass(self):
        sw = SquareWaveMechanism(3.0)
        rng = np.random.default_rng(1)
        value = 0.5
        reports = sw.privatize(np.full(30_000, value), seed=rng)
        in_band = np.abs(reports - value) <= sw.b
        assert abs(in_band.mean() - 2 * sw.b * sw.p) < 0.01

    def test_out_of_range_input_rejected(self):
        with pytest.raises(ValueError):
            SquareWaveMechanism(1.0).privatize(np.array([1.5]))

    def test_boundary_inputs_accepted(self):
        sw = SquareWaveMechanism(1.0)
        reports = sw.privatize(np.array([0.0, 1.0]), seed=0)
        assert reports.shape == (2,)


class TestDiscreteSquareWave:
    @pytest.mark.parametrize("eps", [0.7, 1.4, 3.5])
    def test_ldp_ratio_bounded(self, eps):
        sw = DiscreteSquareWave(10, eps)
        assert sw.ldp_ratio() <= math.exp(eps) * (1 + 1e-6)

    def test_transition_rows_sum_to_one(self):
        sw = DiscreteSquareWave(8, 2.0)
        np.testing.assert_allclose(sw.transition.sum(axis=1), 1.0)

    def test_output_domain_wider_than_input(self):
        sw = DiscreteSquareWave(10, 1.0)
        assert sw.d_out > sw.d

    def test_reports_in_output_domain(self):
        sw = DiscreteSquareWave(10, 2.0)
        rng = np.random.default_rng(0)
        reports = sw.privatize(rng.integers(0, 10, 500), seed=rng)
        assert reports.min() >= 0 and reports.max() < sw.d_out

    def test_estimation_recovers_skewed_distribution(self):
        sw = DiscreteSquareWave(8, 4.0)
        rng = np.random.default_rng(1)
        truth = np.array([0.4, 0.25, 0.15, 0.1, 0.05, 0.03, 0.01, 0.01])
        buckets = rng.choice(8, size=30_000, p=truth)
        reports = sw.privatize(buckets, seed=rng)
        estimate = sw.estimate(reports, 30_000)
        assert np.abs(estimate - truth).max() < 0.05

    def test_estimation_is_distribution(self):
        sw = DiscreteSquareWave(6, 1.0)
        rng = np.random.default_rng(2)
        reports = sw.privatize(rng.integers(0, 6, 300), seed=rng)
        estimate = sw.estimate(reports, 300)
        assert estimate.sum() == pytest.approx(1.0)
        assert np.all(estimate >= 0)

    def test_invalid_bucket_rejected(self):
        sw = DiscreteSquareWave(5, 1.0)
        with pytest.raises(ValueError):
            sw.privatize(np.array([5]))

    def test_invalid_postprocess_rejected(self):
        with pytest.raises(ValueError):
            DiscreteSquareWave(5, 1.0, postprocess="bogus")

    @given(st.integers(min_value=2, max_value=20), st.sampled_from([0.7, 1.4, 2.8, 5.0]))
    @settings(max_examples=20, deadline=None)
    def test_ldp_property(self, d, eps):
        """Property: the bucketised SW transition is always e^eps-bounded."""
        sw = DiscreteSquareWave(d, eps)
        assert sw.ldp_ratio() <= math.exp(eps) * (1 + 1e-6)
