"""Tests for repro.mechanisms.mdsw — the Multi-dimensional Square Wave baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.dam import DiscreteDAM
from repro.core.domain import GridSpec, marginals
from repro.mechanisms.mdsw import MDSW
from repro.metrics.wasserstein import wasserstein2_grid


class TestMDSWConstruction:
    def test_budget_split(self, unit_grid5):
        mech = MDSW(unit_grid5, 4.0)
        assert mech.oracle_x.epsilon == pytest.approx(2.0)
        assert mech.oracle_y.epsilon == pytest.approx(2.0)

    def test_custom_split(self, unit_grid5):
        mech = MDSW(unit_grid5, 4.0, budget_split=0.25)
        assert mech.oracle_x.epsilon == pytest.approx(1.0)
        assert mech.oracle_y.epsilon == pytest.approx(3.0)

    def test_invalid_split_rejected(self, unit_grid5):
        with pytest.raises(ValueError):
            MDSW(unit_grid5, 1.0, budget_split=1.0)

    def test_output_domain_size(self, unit_grid5):
        mech = MDSW(unit_grid5, 2.0)
        assert mech.output_domain_size() == mech.oracle_x.d_out * mech.oracle_y.d_out


class TestMDSWBehaviour:
    def test_run_produces_distribution(self, unit_grid5, clustered_points):
        mech = MDSW(unit_grid5, 3.5)
        report = mech.run(clustered_points, seed=0)
        assert report.estimate.flat().sum() == pytest.approx(1.0)

    def test_reports_within_output_domain(self, unit_grid5, clustered_points):
        mech = MDSW(unit_grid5, 3.5)
        reports = mech.privatize_points(clustered_points[:500], seed=1)
        assert reports.min() >= 0
        assert reports.max() < mech.output_domain_size()

    def test_recovers_marginals(self, unit_grid5, clustered_points):
        """MDSW's strength: per-axis marginals are estimated well."""
        mech = MDSW(unit_grid5, 6.0)
        true = unit_grid5.distribution(clustered_points)
        estimate = mech.run(clustered_points, seed=2).estimate
        true_x, true_y = marginals(true)
        est_x, est_y = marginals(estimate)
        assert np.abs(true_x - est_x).max() < 0.08
        assert np.abs(true_y - est_y).max() < 0.08

    def test_estimate_is_product_of_marginals(self, unit_grid5, clustered_points):
        """MDSW's weakness (by construction): the joint is the product of its marginals."""
        mech = MDSW(unit_grid5, 3.0)
        estimate = mech.run(clustered_points, seed=3).estimate
        est_x, est_y = marginals(estimate)
        np.testing.assert_allclose(estimate.probabilities, np.outer(est_y, est_x), atol=1e-9)

    def test_dam_beats_mdsw_on_correlated_data(self, rng):
        """The paper's headline claim on a strongly correlated dataset.

        Points lie along the diagonal, so the true joint is far from the product of its
        marginals; DAM keeps the cross-dimension structure, MDSW cannot.
        """
        grid = GridSpec.unit(5)
        t = rng.random(12_000)
        pts = np.clip(np.column_stack([t, t]) + rng.normal(0, 0.04, size=(12_000, 2)), 0, 1)
        true = grid.distribution(pts)
        dam_error = wasserstein2_grid(true, DiscreteDAM(grid, 3.5).run(pts, seed=4).estimate)
        mdsw_error = wasserstein2_grid(true, MDSW(grid, 3.5).run(pts, seed=4).estimate)
        assert dam_error < mdsw_error

    def test_empty_input_gives_uniformish_estimate(self, unit_grid5):
        mech = MDSW(unit_grid5, 2.0)
        report = mech.run(np.empty((0, 2)), seed=0)
        assert report.estimate.flat().sum() == pytest.approx(1.0)
