"""Tests for repro.mechanisms.cfo — GRR, OUE, OLH and the Bucket+CFO strawman."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.mechanisms.cfo import (
    BucketCFOMechanism,
    GeneralizedRandomizedResponse,
    OptimizedLocalHashing,
    OptimizedUnaryEncoding,
)


def _frequency_recovery_error(oracle, truth: np.ndarray, n: int, seed: int) -> float:
    rng = np.random.default_rng(seed)
    values = rng.choice(truth.size, size=n, p=truth)
    reports = oracle.privatize(values, seed=rng)
    estimate = oracle.estimate_frequencies(reports, n)
    return float(np.abs(estimate - truth).max())


class TestGRR:
    def test_probabilities(self):
        grr = GeneralizedRandomizedResponse(10, 2.0)
        assert grr.p == pytest.approx(math.exp(2.0) / (math.exp(2.0) + 9))
        assert grr.p + 9 * grr.q == pytest.approx(1.0)

    def test_reports_in_domain(self):
        grr = GeneralizedRandomizedResponse(6, 1.0)
        rng = np.random.default_rng(0)
        reports = grr.privatize(rng.integers(0, 6, 500), seed=rng)
        assert reports.min() >= 0 and reports.max() < 6

    def test_keep_probability_empirical(self):
        grr = GeneralizedRandomizedResponse(4, 3.0)
        rng = np.random.default_rng(1)
        values = np.zeros(20_000, dtype=int)
        reports = grr.privatize(values, seed=rng)
        assert abs((reports == 0).mean() - grr.p) < 0.01

    def test_other_values_uniform(self):
        grr = GeneralizedRandomizedResponse(4, 1.0)
        rng = np.random.default_rng(2)
        reports = grr.privatize(np.zeros(30_000, dtype=int), seed=rng)
        other_counts = np.bincount(reports, minlength=4)[1:]
        assert other_counts.std() / other_counts.mean() < 0.1

    def test_frequency_recovery(self):
        truth = np.array([0.5, 0.25, 0.15, 0.1])
        grr = GeneralizedRandomizedResponse(4, 3.0)
        assert _frequency_recovery_error(grr, truth, 40_000, seed=3) < 0.03

    def test_estimate_is_distribution(self):
        grr = GeneralizedRandomizedResponse(5, 1.0)
        rng = np.random.default_rng(4)
        reports = grr.privatize(rng.integers(0, 5, 200), seed=rng)
        estimate = grr.estimate_frequencies(reports, 200)
        assert estimate.sum() == pytest.approx(1.0)
        assert np.all(estimate >= 0)

    def test_out_of_domain_value_rejected(self):
        grr = GeneralizedRandomizedResponse(4, 1.0)
        with pytest.raises(ValueError):
            grr.privatize(np.array([4]))

    def test_small_domain_rejected(self):
        with pytest.raises(ValueError):
            GeneralizedRandomizedResponse(1, 1.0)

    def test_zero_users_gives_uniform(self):
        grr = GeneralizedRandomizedResponse(4, 1.0)
        np.testing.assert_allclose(grr.estimate_frequencies(np.array([], dtype=int), 0), 0.25)


class TestOUE:
    def test_report_shape(self):
        oue = OptimizedUnaryEncoding(8, 1.5)
        reports = oue.privatize(np.array([0, 3, 7]), seed=0)
        assert reports.shape == (3, 8)
        assert reports.dtype == bool

    def test_true_bit_probability(self):
        oue = OptimizedUnaryEncoding(5, 2.0)
        rng = np.random.default_rng(0)
        reports = oue.privatize(np.zeros(20_000, dtype=int), seed=rng)
        assert abs(reports[:, 0].mean() - 0.5) < 0.01

    def test_false_bit_probability(self):
        oue = OptimizedUnaryEncoding(5, 2.0)
        rng = np.random.default_rng(1)
        reports = oue.privatize(np.zeros(20_000, dtype=int), seed=rng)
        expected_q = 1.0 / (math.exp(2.0) + 1.0)
        assert abs(reports[:, 3].mean() - expected_q) < 0.01

    def test_frequency_recovery(self):
        truth = np.array([0.4, 0.3, 0.2, 0.05, 0.05])
        oue = OptimizedUnaryEncoding(5, 2.0)
        assert _frequency_recovery_error(oue, truth, 30_000, seed=2) < 0.03

    def test_recovery_beats_grr_for_large_domain(self):
        """OUE's variance advantage over GRR on large domains (the reason it exists)."""
        k = 64
        rng = np.random.default_rng(5)
        truth = rng.dirichlet(np.ones(k))
        oue_err = _frequency_recovery_error(OptimizedUnaryEncoding(k, 1.0), truth, 20_000, 6)
        grr_err = _frequency_recovery_error(GeneralizedRandomizedResponse(k, 1.0), truth, 20_000, 6)
        assert oue_err < grr_err

    def test_wrong_report_shape_rejected(self):
        oue = OptimizedUnaryEncoding(5, 1.0)
        with pytest.raises(ValueError):
            oue.estimate_frequencies(np.zeros((3, 4), dtype=bool), 3)


class TestOLH:
    def test_hash_range(self):
        olh = OptimizedLocalHashing(50, 1.0)
        assert olh.g >= 2
        reports = olh.privatize(np.arange(50), seed=0)
        assert reports.shape == (50, 2)
        assert reports[:, 1].min() >= 0
        assert reports[:, 1].max() < olh.g

    def test_hash_deterministic(self):
        olh = OptimizedLocalHashing(20, 1.0)
        seeds = np.array([7, 7, 7])
        values = np.array([3, 3, 3])
        hashed = olh._hash(seeds, values)
        assert len(set(hashed.tolist())) == 1

    def test_frequency_recovery(self):
        truth = np.array([0.5, 0.2, 0.1, 0.1, 0.05, 0.05])
        olh = OptimizedLocalHashing(6, 2.0)
        assert _frequency_recovery_error(olh, truth, 8_000, seed=7) < 0.06

    def test_estimate_is_distribution(self):
        olh = OptimizedLocalHashing(10, 1.0)
        rng = np.random.default_rng(8)
        reports = olh.privatize(rng.integers(0, 10, 500), seed=rng)
        estimate = olh.estimate_frequencies(reports, 500)
        assert estimate.sum() == pytest.approx(1.0)

    def test_wrong_report_shape_rejected(self):
        olh = OptimizedLocalHashing(10, 1.0)
        with pytest.raises(ValueError):
            olh.estimate_frequencies(np.zeros((5, 3), dtype=int), 5)


class TestBucketCFO:
    @pytest.mark.parametrize("oracle", ["grr", "oue", "olh"])
    def test_run_produces_distribution(self, unit_grid5, clustered_points, oracle):
        mech = BucketCFOMechanism(unit_grid5, 3.0, oracle=oracle)
        report = mech.run(clustered_points[:1500], seed=0)
        assert report.estimate.flat().sum() == pytest.approx(1.0)

    def test_name_reflects_oracle(self, unit_grid5):
        assert BucketCFOMechanism(unit_grid5, 1.0, oracle="oue").name == "Bucket+OUE"

    def test_unknown_oracle_rejected(self, unit_grid5):
        with pytest.raises(ValueError):
            BucketCFOMechanism(unit_grid5, 1.0, oracle="rr")

    def test_estimate_before_privatize_rejected(self, unit_grid5):
        mech = BucketCFOMechanism(unit_grid5, 1.0)
        with pytest.raises(RuntimeError):
            mech.estimate(np.zeros(unit_grid5.n_cells), 10)

    def test_grr_recovery_quality(self, unit_grid5, clustered_points):
        mech = BucketCFOMechanism(unit_grid5, 5.0, oracle="grr")
        true = unit_grid5.distribution(clustered_points)
        report = mech.run(clustered_points, seed=1)
        assert report.estimate.total_variation(true) < 0.1


class TestSupportCountProtocol:
    """Count-based estimation is the sufficient-statistic path the sharded
    trajectory fit rides: summing per-shard support counts and estimating once must
    be bit-identical to estimating over the concatenated raw reports."""

    @pytest.mark.parametrize(
        "oracle_factory",
        [
lambda: GeneralizedRandomizedResponse(6, 1.2),
lambda: OptimizedUnaryEncoding(6, 1.2),
],
    )
    def test_sharded_counts_match_raw_reports_bitwise(self, oracle_factory):
        oracle = oracle_factory()
        rng = np.random.default_rng(0)
        values = rng.integers(0, oracle.domain_size, size=300)
        reports = oracle.privatize(values, seed=1)
        whole = oracle.estimate_frequencies(reports, values.shape[0])
        counts = sum(
            oracle.support_counts(shard) for shard in np.array_split(reports, 5)
        )
        merged = oracle.estimate_from_counts(counts, values.shape[0])
        np.testing.assert_array_equal(whole, merged)

    def test_zero_users_uniform(self):
        oracle = GeneralizedRandomizedResponse(4, 1.0)
        np.testing.assert_allclose(oracle.estimate_from_counts(np.zeros(4), 0), np.full(4, 0.25))

    def test_olh_does_not_support_counts(self):
        oracle = OptimizedLocalHashing(6, 1.2)
        with pytest.raises(NotImplementedError):
            oracle.support_counts(np.zeros((1, 2), dtype=np.int64))
        with pytest.raises(NotImplementedError):
            oracle.estimate_from_counts(np.zeros(6), 1)
