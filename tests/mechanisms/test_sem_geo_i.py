"""Tests for repro.mechanisms.sem_geo_i — the Subset Exponential Mechanism baseline."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.domain import GridSpec
from repro.mechanisms.sem_geo_i import SEMGeoI
from repro.metrics.wasserstein import wasserstein2_grid


class TestConstruction:
    def test_default_subset_size(self, unit_grid5):
        mech = SEMGeoI(unit_grid5, 2.0)
        expected = max(1, round(25 / math.exp(2.0)))
        assert mech.subset_size == expected

    def test_subset_size_grows_as_budget_shrinks(self, unit_grid5):
        assert SEMGeoI(unit_grid5, 0.7).subset_size > SEMGeoI(unit_grid5, 3.5).subset_size

    def test_explicit_subset_size(self, unit_grid5):
        assert SEMGeoI(unit_grid5, 1.0, subset_size=5).subset_size == 5

    def test_invalid_subset_size_rejected(self, unit_grid5):
        with pytest.raises(ValueError):
            SEMGeoI(unit_grid5, 1.0, subset_size=0)
        with pytest.raises(ValueError):
            SEMGeoI(unit_grid5, 1.0, subset_size=26)

    def test_anchor_probabilities_row_stochastic(self, unit_grid5):
        mech = SEMGeoI(unit_grid5, 2.0)
        np.testing.assert_allclose(mech.anchor_probabilities.sum(axis=1), 1.0)

    def test_inclusion_probabilities_bounds(self, unit_grid5):
        mech = SEMGeoI(unit_grid5, 2.0)
        inc = mech.inclusion_probabilities
        assert np.all(inc >= 0) and np.all(inc <= 1.0 + 1e-12)

    def test_inclusion_rows_sum_to_subset_size(self, unit_grid5):
        mech = SEMGeoI(unit_grid5, 2.0)
        np.testing.assert_allclose(
            mech.inclusion_probabilities.sum(axis=1), mech.subset_size, rtol=1e-9
        )


class TestReporting:
    def test_anchor_reports_in_domain(self, unit_grid5, clustered_points):
        mech = SEMGeoI(unit_grid5, 2.0)
        reports = mech.privatize_points(clustered_points[:300], seed=0)
        assert reports.min() >= 0 and reports.max() < unit_grid5.n_cells

    def test_subsets_have_exact_size(self, unit_grid5):
        mech = SEMGeoI(unit_grid5, 1.5)
        cells = np.random.default_rng(0).integers(0, 25, 200)
        inclusion = mech.privatize_subsets(cells, seed=1)
        np.testing.assert_array_equal(inclusion.sum(axis=1), mech.subset_size)

    def test_empty_input(self, unit_grid5):
        mech = SEMGeoI(unit_grid5, 1.5)
        inclusion = mech.privatize_subsets(np.array([], dtype=int), seed=0)
        assert inclusion.shape == (0, 25)

    def test_anchor_near_truth_more_often_than_far(self, unit_grid5):
        mech = SEMGeoI(unit_grid5, 3.0)
        rng = np.random.default_rng(2)
        cell = unit_grid5.rowcol_to_cell(2, 2)
        reports = mech.privatize_cells(np.full(20_000, cell), seed=rng)
        counts = np.bincount(reports, minlength=25)
        assert counts[cell] > counts[unit_grid5.rowcol_to_cell(0, 4)]

    def test_empirical_inclusion_matches_closed_form(self, unit_grid5):
        mech = SEMGeoI(unit_grid5, 2.0)
        rng = np.random.default_rng(3)
        cell = 12
        n = 20_000
        inclusion = mech.privatize_subsets(np.full(n, cell), seed=rng)
        empirical = inclusion.mean(axis=0)
        np.testing.assert_allclose(empirical, mech.inclusion_probabilities[cell], atol=0.02)

    def test_aggregate_subsets_shape_check(self, unit_grid5):
        mech = SEMGeoI(unit_grid5, 2.0)
        with pytest.raises(ValueError):
            mech.aggregate_subsets(np.zeros((3, 10), dtype=bool))


class TestEstimation:
    def test_run_produces_distribution(self, unit_grid5, clustered_points):
        mech = SEMGeoI(unit_grid5, 2.5)
        report = mech.run(clustered_points, seed=0)
        assert report.estimate.flat().sum() == pytest.approx(1.0)

    def test_recovers_hotspot_with_large_budget(self, unit_grid5, rng):
        pts = np.clip(rng.normal([0.2, 0.8], 0.06, size=(8000, 2)), 0, 1)
        true = unit_grid5.distribution(pts)
        mech = SEMGeoI(unit_grid5, 6.0)
        estimate = mech.run(pts, seed=1).estimate
        assert wasserstein2_grid(true, estimate) < 0.12

    def test_transition_property_is_anchor_kernel(self, unit_grid5):
        mech = SEMGeoI(unit_grid5, 2.0)
        np.testing.assert_allclose(mech.transition, mech.anchor_probabilities)

    def test_more_budget_less_error(self, unit_grid5, clustered_points):
        true = unit_grid5.distribution(clustered_points)
        errors = []
        for eps in (0.7, 6.0):
            mech = SEMGeoI(unit_grid5, eps)
            errors.append(wasserstein2_grid(true, mech.run(clustered_points, seed=2).estimate))
        assert errors[1] < errors[0]

    def test_single_cell_grid(self):
        grid = GridSpec.unit(1)
        mech = SEMGeoI(grid, 1.0)
        report = mech.run(np.random.default_rng(0).random((50, 2)), seed=0)
        np.testing.assert_allclose(report.estimate.flat(), [1.0])
