"""Tests for repro.mechanisms.geo_i — planar Laplace and the discrete Geo-I kernel."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.domain import GridSpec
from repro.mechanisms.geo_i import DiscreteGeoIMechanism, PlanarLaplaceMechanism


class TestPlanarLaplace:
    def test_noise_is_unbiased(self):
        mech = PlanarLaplaceMechanism(2.0)
        rng = np.random.default_rng(0)
        point = np.array([[0.3, 0.7]])
        reports = mech.privatize(np.repeat(point, 30_000, axis=0), seed=rng)
        np.testing.assert_allclose(reports.mean(axis=0), point[0], atol=0.02)

    def test_expected_radius_is_2_over_eps(self):
        """The planar Laplace radius is Gamma(2, 1/eps), so its mean is 2/eps."""
        eps = 4.0
        mech = PlanarLaplaceMechanism(eps)
        rng = np.random.default_rng(1)
        point = np.zeros((20_000, 2))
        reports = mech.privatize(point, seed=rng)
        radii = np.linalg.norm(reports, axis=1)
        assert radii.mean() == pytest.approx(2.0 / eps, rel=0.05)

    def test_larger_epsilon_means_less_noise(self):
        rng_a, rng_b = np.random.default_rng(2), np.random.default_rng(2)
        point = np.zeros((5_000, 2))
        noisy_low = PlanarLaplaceMechanism(1.0).privatize(point, seed=rng_a)
        noisy_high = PlanarLaplaceMechanism(8.0).privatize(point, seed=rng_b)
        assert np.linalg.norm(noisy_high, axis=1).mean() < np.linalg.norm(noisy_low, axis=1).mean()

    def test_privacy_loss_scales_with_distance(self):
        mech = PlanarLaplaceMechanism(1.5)
        assert mech.privacy_loss(2.0) == pytest.approx(3.0)

    def test_invalid_epsilon_rejected(self):
        with pytest.raises(ValueError):
            PlanarLaplaceMechanism(0.0)


class TestDiscreteGeoI:
    def test_rows_sum_to_one(self, unit_grid5):
        mech = DiscreteGeoIMechanism(unit_grid5, 2.0)
        np.testing.assert_allclose(mech.transition.sum(axis=1), 1.0)

    def test_self_report_most_likely(self, unit_grid5):
        mech = DiscreteGeoIMechanism(unit_grid5, 2.0)
        for cell in range(unit_grid5.n_cells):
            assert int(np.argmax(mech.transition[cell])) == cell

    def test_probability_decays_with_distance(self, unit_grid5):
        mech = DiscreteGeoIMechanism(unit_grid5, 2.0)
        center = unit_grid5.rowcol_to_cell(2, 2)
        near = unit_grid5.rowcol_to_cell(2, 3)
        far = unit_grid5.rowcol_to_cell(0, 0)
        row = mech.transition[center]
        assert row[near] > row[far]

    def test_geo_indistinguishability_audit(self, unit_grid5):
        """The measured per-distance log ratio never exceeds the declared epsilon."""
        for eps in (0.7, 2.0, 5.0):
            mech = DiscreteGeoIMechanism(unit_grid5, eps)
            assert mech.geo_indistinguishability_audit() <= eps + 1e-9

    def test_run_produces_distribution(self, unit_grid5, clustered_points):
        mech = DiscreteGeoIMechanism(unit_grid5, 3.0)
        report = mech.run(clustered_points[:2000], seed=0)
        assert report.estimate.flat().sum() == pytest.approx(1.0)

    def test_distance_unit_domain(self):
        grid = GridSpec.unit(4)
        cells = DiscreteGeoIMechanism(grid, 2.0, distance_unit="cells")
        domain = DiscreteGeoIMechanism(grid, 2.0, distance_unit="domain")
        # With domain units the distances are 4x smaller, so the kernel is flatter.
        assert domain.transition.max() < cells.transition.max()

    def test_invalid_distance_unit_rejected(self, unit_grid5):
        with pytest.raises(ValueError):
            DiscreteGeoIMechanism(unit_grid5, 1.0, distance_unit="miles")

    def test_geo_i_is_not_ldp(self, unit_grid5):
        """Geo-I gives distance-dependent protection, so the flat LDP ratio exceeds e^eps.

        This is exactly the paper's argument for why the two mechanism families need
        the Local Privacy calibration before they can be compared.
        """
        eps = 1.0
        mech = DiscreteGeoIMechanism(unit_grid5, eps)
        max_distance = mech.cell_distances.max()
        assert mech.ldp_ratio() > math.exp(eps)
        assert mech.ldp_ratio() <= math.exp(eps * max_distance) * (1 + 1e-9)
